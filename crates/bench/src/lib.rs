//! Shared harness for the figure-regeneration benches.
//!
//! Each bench target under `benches/` regenerates one figure of the
//! paper's evaluation section (Figures 4–13): it sweeps the same
//! workloads and configurations and prints the same rows/series the
//! paper plots. This crate holds the common pieces: system-configuration
//! builders for every evaluated variant, a parallel run executor, and
//! plain-text table formatting.
//!
//! Budgets: benches default to 300k instructions per core (the paper
//! uses 100M-instruction SimPoints, which is hours of wall-clock per
//! figure). Set `FBD_BUDGET=<n>` or `FBD_PAPER_MODE=1` to lengthen runs.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use fbd_core::experiment::{default_budget, reference_ipcs, smt_speedup, ExperimentConfig};
pub use fbd_core::parallel_map;
use fbd_core::{RunResult, RunSpec};
use fbd_types::config::{
    AmbPrefetchMode, Associativity, Interleaving, MemoryConfig, MemoryTech, SchedPolicy,
    SystemConfig,
};
use fbd_types::time::DataRate;
use fbd_workloads::{paper_workloads, Workload, PROFILES};

/// Run-control parameters for benches: seed 42, automatic L2 warm-up,
/// and the instruction budget from [`default_budget`] (so `FBD_BUDGET`
/// and `FBD_PAPER_MODE=1` keep working).
pub fn experiment() -> ExperimentConfig {
    ExperimentConfig {
        budget: default_budget(),
        ..ExperimentConfig::default()
    }
}

/// A system variant evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Conventional DDR2 (baseline).
    Ddr2,
    /// FB-DIMM without prefetching.
    Fbd,
    /// FB-DIMM with AMB prefetching.
    FbdAp,
    /// FB-DIMM with the full-latency prefetching ablation.
    FbdApfl,
}

impl Variant {
    /// Short display label, matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Ddr2 => "DDR2",
            Variant::Fbd => "FBD",
            Variant::FbdAp => "FBD-AP",
            Variant::FbdApfl => "FBD-APFL",
        }
    }
}

/// Builds a system configuration for `variant` with `cores` cores.
pub fn system(variant: Variant, cores: u32) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(cores);
    cfg.mem = match variant {
        Variant::Ddr2 => MemoryConfig::ddr2_default(),
        Variant::Fbd => MemoryConfig::fbdimm_default(),
        Variant::FbdAp => MemoryConfig::fbdimm_with_prefetch(),
        Variant::FbdApfl => {
            let mut m = MemoryConfig::fbdimm_with_prefetch();
            m.amb.mode = AmbPrefetchMode::FullLatency;
            m
        }
    };
    cfg
}

/// Selects a scheduling policy on a bench config by its registry name
/// (validated against [`fbd_ctrl::schedulers`]), so benches pick
/// policies the same way the CLI's `--scheduler` flag does.
///
/// # Panics
///
/// Panics on a name the scheduler registry does not know.
pub fn with_scheduler(mut cfg: SystemConfig, name: &str) -> SystemConfig {
    assert!(
        fbd_ctrl::schedulers().get(name).is_some(),
        "unknown scheduler `{name}` (available: {})",
        fbd_ctrl::schedulers().available()
    );
    // The config enum is the carrier the grouped runners serialize; it
    // mirrors the registry entry of the same name.
    cfg.mem.sched_policy = match name {
        "fcfs" => SchedPolicy::Fcfs,
        _ => SchedPolicy::HitFirst,
    };
    cfg
}

/// AMB-prefetching system with explicit region size, buffer entries and
/// associativity (the Figure 8/11/13 sensitivity grid).
pub fn ap_system(
    cores: u32,
    region_lines: u32,
    entries: u32,
    assoc: Associativity,
) -> SystemConfig {
    let mut cfg = system(Variant::FbdAp, cores);
    cfg.mem.amb.region_lines = region_lines;
    cfg.mem.amb.cache_lines = entries;
    cfg.mem.amb.associativity = assoc;
    cfg.mem.interleaving = Interleaving::MultiCacheline {
        lines: region_lines,
    };
    cfg
}

/// Applies a channel-count / data-rate sweep point (Figure 6).
pub fn with_channels_and_rate(
    mut cfg: SystemConfig,
    logical_channels: u32,
    rate: DataRate,
) -> SystemConfig {
    cfg.mem.logical_channels = logical_channels;
    cfg.mem.data_rate = rate;
    cfg
}

/// True for FB-DIMM variants (used when a sweep applies to both).
pub fn is_fbd(cfg: &SystemConfig) -> bool {
    matches!(cfg.mem.tech, MemoryTech::FbDimm { .. })
}

/// The paper's workload groups: (label, workloads).
pub fn workload_groups() -> Vec<(&'static str, Vec<Workload>)> {
    let (c1, c2, c4, c8) = paper_workloads();
    vec![
        ("1-core", c1),
        ("2-core", c2),
        ("4-core", c4),
        ("8-core", c8),
    ]
}

/// All twelve benchmark names.
pub fn benchmark_names() -> Vec<&'static str> {
    PROFILES.iter().map(|p| p.name).collect()
}

/// Runs `workload` on every (label, config) pair in parallel; returns
/// results in the same order.
pub fn run_matrix(
    configs: &[(String, SystemConfig)],
    workloads: &[Workload],
    exp: &ExperimentConfig,
) -> Vec<((String, String), RunResult)> {
    let jobs: Vec<(String, SystemConfig, Workload)> = configs
        .iter()
        .flat_map(|(label, cfg)| {
            workloads
                .iter()
                .map(move |w| (label.clone(), *cfg, w.clone()))
        })
        .collect();
    let results = parallel_map(&jobs, |(_, cfg, w)| {
        RunSpec::new(*cfg)
            .with_workload(w.clone())
            .experiment(*exp)
            .run()
    });
    jobs.into_iter()
        .zip(results)
        .map(|((label, _, w), r)| ((label, w.name().to_string()), r))
        .collect()
}

/// One workload group's finished runs: the group label, its workloads,
/// and the `(config label, workload name) → result` pairs in the same
/// order [`run_matrix`] would produce.
pub type GroupResults = (
    &'static str,
    Vec<Workload>,
    Vec<((String, String), RunResult)>,
);

/// Runs every workload group's (config × workload) matrix as one flat
/// parallel batch instead of one barrier per group, so a slow 8-core
/// run can overlap the 1-core tail. `configs_for` builds the per-group
/// configuration list from the group's core count. Output order is
/// deterministic: groups in [`workload_groups`] order, each group's
/// results in the same order a per-group [`run_matrix`] call returns.
pub fn run_grouped(
    configs_for: impl Fn(u32) -> Vec<(String, SystemConfig)>,
    exp: &ExperimentConfig,
) -> Vec<GroupResults> {
    let groups = workload_groups();
    let mut jobs: Vec<(usize, String, SystemConfig, Workload)> = Vec::new();
    for (gi, (_, workloads)) in groups.iter().enumerate() {
        let cores = workloads[0].cores();
        for (label, cfg) in configs_for(cores) {
            for w in workloads {
                jobs.push((gi, label.clone(), cfg, w.clone()));
            }
        }
    }
    let results = parallel_map(&jobs, |(_, _, cfg, w)| {
        RunSpec::new(*cfg)
            .with_workload(w.clone())
            .experiment(*exp)
            .run()
    });
    let mut out: Vec<GroupResults> = groups
        .into_iter()
        .map(|(g, ws)| (g, ws, Vec::new()))
        .collect();
    for ((gi, label, _, w), r) in jobs.into_iter().zip(results) {
        out[gi].2.push(((label, w.name().to_string()), r));
    }
    out
}

/// Computes per-benchmark reference IPCs on the single-core variant of
/// `reference` (the denominator of the SMT-speedup metric), in parallel.
pub fn references(reference: Variant, exp: &ExperimentConfig) -> HashMap<String, f64> {
    let names = benchmark_names();
    let cfg = system(reference, 1);
    let ipcs = parallel_map(&names, |name| {
        reference_ipcs(&cfg, &[name], exp)
            .remove(*name)
            .expect("reference computed")
    });
    names.into_iter().map(String::from).zip(ipcs).collect()
}

/// SMT speedup of a finished run.
pub fn speedup(workload: &Workload, result: &RunResult, refs: &HashMap<String, f64>) -> f64 {
    smt_speedup(workload, result, refs)
}

/// Prints a fixed-width table; the first row is the header.
pub fn print_table(rows: &[Vec<String>]) {
    if rows.is_empty() {
        return;
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let widths: Vec<usize> = (0..cols)
        .map(|c| {
            rows.iter()
                .map(|r| r.get(c).map_or(0, String::len))
                .max()
                .unwrap_or(0)
        })
        .collect();
    for (i, row) in rows.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(cell, w)| format!("{cell:>w$}"))
            .collect();
        println!("{}", line.join("  "));
        if i == 0 {
            let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            println!("{}", sep.join("  "));
        }
    }
}

/// Converts a table (first row = header) to CSV. Blank separator rows
/// are dropped; cells containing commas, quotes, or newlines are quoted
/// per RFC 4180.
pub fn table_to_csv(rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    for row in rows.iter().filter(|r| !r.is_empty()) {
        let line: Vec<String> = row
            .iter()
            .map(|cell| {
                if cell.contains([',', '"', '\n']) {
                    format!("\"{}\"", cell.replace('"', "\"\""))
                } else {
                    cell.clone()
                }
            })
            .collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

/// Writes `rows` as `<dir>/<name>.csv`, creating the directory first.
///
/// # Errors
///
/// Propagates directory-creation and write failures.
pub fn write_table_csv(dir: &Path, name: &str, rows: &[Vec<String>]) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, table_to_csv(rows))?;
    Ok(path)
}

/// Prints `rows` as a fixed-width table and, when `FBD_OUT_DIR` is set,
/// also writes them to `$FBD_OUT_DIR/<name>.csv` so figure data lands
/// as structured files instead of stdout text only.
pub fn emit_table(name: &str, rows: &[Vec<String>]) {
    print_table(rows);
    if let Ok(dir) = std::env::var("FBD_OUT_DIR") {
        match write_table_csv(Path::new(&dir), name, rows) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("cannot write {name}.csv under {dir}: {e}"),
        }
    }
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a ratio as a signed percentage delta (1.16 → "+16.0%").
pub fn pct(v: f64) -> String {
    format!("{:+.1}%", (v - 1.0) * 100.0)
}

/// Prints the standard bench banner with run parameters.
pub fn banner(figure: &str, what: &str, exp: &ExperimentConfig) {
    println!();
    println!("=== {figure}: {what} ===");
    println!(
        "budget: {} instructions/core, seed {} (FBD_BUDGET / FBD_PAPER_MODE=1 to lengthen)",
        exp.budget, exp.seed
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn variant_configs_validate() {
        for v in [
            Variant::Ddr2,
            Variant::Fbd,
            Variant::FbdAp,
            Variant::FbdApfl,
        ] {
            for cores in [1, 2, 4, 8] {
                system(v, cores).validate().unwrap();
            }
        }
        ap_system(4, 8, 128, Associativity::Ways(4))
            .validate()
            .unwrap();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(1.16), "+16.0%");
        assert_eq!(pct(0.9), "-10.0%");
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn table_to_csv_quotes_and_drops_separators() {
        let rows = vec![
            vec!["workload".to_string(), "note".to_string()],
            vec!["4C-1".to_string(), "a,b".to_string()],
            Vec::new(),
            vec!["8C-2".to_string(), "say \"hi\"".to_string()],
        ];
        assert_eq!(
            table_to_csv(&rows),
            "workload,note\n4C-1,\"a,b\"\n8C-2,\"say \"\"hi\"\"\"\n"
        );
    }

    #[test]
    fn write_table_csv_round_trips() {
        let dir = std::env::temp_dir().join(format!("fbd-bench-test-{}", std::process::id()));
        let rows = vec![
            vec!["a".to_string(), "b".to_string()],
            vec!["1".to_string(), "2".to_string()],
        ];
        let path = write_table_csv(&dir, "fig99", &rows).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn workload_groups_cover_the_paper() {
        let groups = workload_groups();
        let counts: Vec<usize> = groups.iter().map(|(_, ws)| ws.len()).collect();
        assert_eq!(counts, vec![12, 6, 6, 3]);
    }
}
