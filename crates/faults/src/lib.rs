//! Deterministic link fault injection for the FB-DIMM channel.
//!
//! Real FB-DIMM links protect every southbound/northbound frame with a
//! CRC; the controller replays corrupted frames and, on persistent
//! failure, degrades the channel to a reduced-width lane map. This
//! crate provides the *error process* side of that protocol: a seeded,
//! reproducible per-link bit-error stream ([`FaultProcess`]), the retry
//! backoff schedule ([`backoff_slots`]), and the counter/report types
//! ([`FaultCounters`], [`FaultReport`]) the recovery machinery in
//! `fbd-link`/`fbd-core` aggregates.
//!
//! Determinism contract: a process draws one pseudo-random number per
//! frame from a [SplitMix64] stream derived from `(seed, channel,
//! direction)` only. Two runs with the same configuration therefore
//! corrupt exactly the same frames, regardless of host, thread
//! scheduling or sweep ordering — the property the
//! `--fault-seed` CLI contract and the determinism tests rely on.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use fbd_types::config::{FaultConfig, FaultMode};
use fbd_types::time::Dur;

/// Direction of an FB-DIMM link (each logical channel has one of each).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkDir {
    /// Controller → DIMMs: command and write-data frames.
    South,
    /// DIMMs → controller: read-data frames.
    North,
}

impl LinkDir {
    /// Dense index (south first).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            LinkDir::South => 0,
            LinkDir::North => 1,
        }
    }

    /// Short machine-readable label.
    pub const fn label(self) -> &'static str {
        match self {
            LinkDir::South => "south",
            LinkDir::North => "north",
        }
    }
}

/// Sebastiano Vigna's SplitMix64: tiny, full-period, and statistically
/// solid for simulation use — and dependency-free, which keeps the
/// fault layer out of the vendored-`rand` surface.
#[derive(Clone, Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Folds `v` into the stream position (domain separation between
    /// per-channel / per-direction streams sharing one user seed).
    fn absorb(&mut self, v: u64) {
        self.state ^= v.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        self.next_u64();
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The seeded bit-error process of one link direction.
///
/// One process exists per `(channel, direction)` pair; each transferred
/// frame consumes exactly one draw, so the corruption pattern is a pure
/// function of the configuration — see the crate docs for the
/// determinism contract.
#[derive(Clone, Debug)]
pub struct FaultProcess {
    /// Per-frame corruption probability derived from the BER and the
    /// frame payload width.
    p_frame: f64,
    mode: FaultMode,
    burst_frames: u32,
    rng: SplitMix64,
    /// Remaining frames of a running burst (includes none of the
    /// trigger frame; decremented per subsequent frame).
    burst_left: u32,
    /// Set once a stuck-lane defect has triggered: every later frame is
    /// corrupt until the controller fails the lane over.
    stuck: bool,
    frames_drawn: u64,
}

impl FaultProcess {
    /// Builds the error process for one link direction.
    ///
    /// `bits_per_frame` is the number of payload bits a frame carries on
    /// this direction (wider frames are proportionally more exposed):
    /// the per-frame corruption probability is
    /// `1 − (1 − ber)^bits_per_frame`.
    pub fn new(cfg: &FaultConfig, channel: u32, dir: LinkDir, bits_per_frame: u32) -> FaultProcess {
        let mut rng = SplitMix64::new(cfg.seed);
        rng.absorb(u64::from(channel).wrapping_add(1));
        rng.absorb(dir.index() as u64 + 1);
        let p_frame = 1.0 - (1.0 - cfg.ber).powi(bits_per_frame as i32);
        FaultProcess {
            p_frame,
            mode: cfg.mode,
            burst_frames: cfg.burst_frames,
            rng,
            burst_left: 0,
            stuck: false,
            frames_drawn: 0,
        }
    }

    /// Per-frame corruption probability of this process.
    pub fn p_frame(&self) -> f64 {
        self.p_frame
    }

    /// Number of frames drawn so far.
    pub fn frames_drawn(&self) -> u64 {
        self.frames_drawn
    }

    /// Subjects one frame to the error process; true means the frame
    /// arrives with a CRC error.
    pub fn corrupt_frame(&mut self) -> bool {
        self.frames_drawn += 1;
        if self.stuck {
            // Defect persists; keep the stream position moving so the
            // post-fail-over draws stay aligned across configurations.
            self.rng.next_f64();
            return true;
        }
        if self.burst_left > 0 {
            self.burst_left -= 1;
            self.rng.next_f64();
            return true;
        }
        let hit = self.rng.next_f64() < self.p_frame;
        if hit {
            match self.mode {
                FaultMode::Ber => {}
                FaultMode::Burst => self.burst_left = self.burst_frames.saturating_sub(1),
                FaultMode::StuckLane => self.stuck = true,
            }
        }
        hit
    }

    /// Subjects a multi-frame transfer to the error process; true means
    /// at least one of its `frames` arrived corrupted (the CRC check
    /// fails the transfer as a whole and the controller replays it).
    pub fn corrupt_transfer(&mut self, frames: u64) -> bool {
        let mut any = false;
        for _ in 0..frames {
            // No short-circuit: every frame consumes its draw so the
            // stream position is independent of earlier outcomes.
            any |= self.corrupt_frame();
        }
        any
    }

    /// True once a stuck-lane defect has latched.
    pub fn is_stuck(&self) -> bool {
        self.stuck
    }
}

/// Exponential backoff before replaying a corrupted frame: the
/// controller waits `2^attempt` frame slots (capped at [`MAX_BACKOFF_SLOTS`])
/// before retry `attempt` (0-based).
pub fn backoff_slots(attempt: u32) -> u64 {
    (1u64 << attempt.min(MAX_BACKOFF_CAP)).min(MAX_BACKOFF_SLOTS)
}

/// Cap on the backoff exponent (2^6 = 64 frame slots ≈ 384 ns at the
/// paper's 6 ns frame time).
const MAX_BACKOFF_CAP: u32 = 6;

/// Longest backoff in frame slots.
pub const MAX_BACKOFF_SLOTS: u64 = 64;

/// Running error/recovery counters of one link (or an aggregate of
/// several — see [`FaultCounters::merge`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Transfers that arrived with at least one corrupted frame.
    pub injected: u64,
    /// Corrupted transfers the CRC check caught (the model's CRC is
    /// ideal, so this always equals `injected`; kept separate so a
    /// future aliasing-CRC model slots in without a schema change).
    pub detected: u64,
    /// Replay attempts issued (one transfer may retry several times).
    pub retried: u64,
    /// Transfers whose retry budget ran out (each escalates fail-over).
    pub retry_exhausted: u64,
    /// Lane fail-overs performed (at most one per link direction).
    pub failovers: u64,
    /// Corrupted northbound *prefetch* transfers dropped instead of
    /// retried (the AMB interplay rule: the line is simply not cached).
    pub dropped_prefetch: u64,
}

impl FaultCounters {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.injected += other.injected;
        self.detected += other.detected;
        self.retried += other.retried;
        self.retry_exhausted += other.retry_exhausted;
        self.failovers += other.failovers;
        self.dropped_prefetch += other.dropped_prefetch;
    }

    /// True when any error was injected.
    pub fn any(&self) -> bool {
        self.injected > 0
    }
}

/// End-of-run fault summary: the aggregated counters plus how long the
/// run spent on degraded (half-width) lane maps, summed over link
/// directions — two directions degraded for the same second contribute
/// two seconds of residency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Aggregated error/recovery counters over every link.
    pub counters: FaultCounters,
    /// Summed degraded-width residency across link directions.
    pub degraded: Dur,
}

impl FaultReport {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &FaultReport) {
        self.counters.merge(&other.counters);
        self.degraded += other.degraded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(ber: f64, mode: FaultMode) -> FaultConfig {
        FaultConfig {
            ber,
            seed: 42,
            mode,
            ..FaultConfig::off()
        }
    }

    #[test]
    fn same_stream_is_bit_identical() {
        let c = cfg(1e-4, FaultMode::Ber);
        let mut a = FaultProcess::new(&c, 0, LinkDir::North, 168);
        let mut b = FaultProcess::new(&c, 0, LinkDir::North, 168);
        let pa: Vec<bool> = (0..10_000).map(|_| a.corrupt_frame()).collect();
        let pb: Vec<bool> = (0..10_000).map(|_| b.corrupt_frame()).collect();
        assert_eq!(pa, pb);
        assert!(pa.iter().any(|&x| x), "1e-4 over 168-bit frames must hit");
    }

    #[test]
    fn streams_differ_by_channel_and_direction() {
        let c = cfg(1e-3, FaultMode::Ber);
        let take = |ch, dir| -> Vec<bool> {
            let mut p = FaultProcess::new(&c, ch, dir, 168);
            (0..4_000).map(|_| p.corrupt_frame()).collect()
        };
        let base = take(0, LinkDir::North);
        assert_ne!(base, take(1, LinkDir::North));
        assert_ne!(base, take(0, LinkDir::South));
    }

    #[test]
    fn extreme_rates_behave() {
        let mut never = FaultProcess::new(&cfg(0.0, FaultMode::Ber), 0, LinkDir::South, 120);
        assert!((0..1_000).all(|_| !never.corrupt_frame()));
        assert_eq!(never.p_frame(), 0.0);
        let mut always = FaultProcess::new(&cfg(1.0, FaultMode::Ber), 0, LinkDir::South, 120);
        assert!((0..100).all(|_| always.corrupt_frame()));
    }

    #[test]
    fn frame_probability_grows_with_width() {
        let c = cfg(1e-5, FaultMode::Ber);
        let narrow = FaultProcess::new(&c, 0, LinkDir::South, 120);
        let wide = FaultProcess::new(&c, 0, LinkDir::North, 336);
        assert!(wide.p_frame() > narrow.p_frame());
        // First-order check: p ≈ bits · ber at small rates.
        assert!((narrow.p_frame() - 120.0 * 1e-5).abs() < 1e-6);
    }

    #[test]
    fn burst_corrupts_a_run_of_frames() {
        let mut c = cfg(0.02, FaultMode::Burst);
        c.burst_frames = 4;
        let mut p = FaultProcess::new(&c, 0, LinkDir::North, 168);
        let pattern: Vec<bool> = (0..50_000).map(|_| p.corrupt_frame()).collect();
        let first = pattern.iter().position(|&x| x).expect("some trigger");
        // The trigger plus the next three frames form the burst.
        assert!(pattern[first..first + 4].iter().all(|&x| x));
    }

    #[test]
    fn stuck_lane_latches_forever() {
        let mut p = FaultProcess::new(&cfg(0.05, FaultMode::StuckLane), 0, LinkDir::South, 120);
        let mut seen = false;
        for _ in 0..100_000 {
            let hit = p.corrupt_frame();
            if seen {
                assert!(hit, "stuck lane must stay corrupt");
            }
            seen |= hit;
        }
        assert!(seen && p.is_stuck());
    }

    #[test]
    fn transfer_draw_count_is_outcome_independent() {
        // All frames draw even after an early corruption, keeping the
        // stream aligned for later transfers.
        let mut p = FaultProcess::new(&cfg(1.0, FaultMode::Ber), 0, LinkDir::North, 168);
        assert!(p.corrupt_transfer(12));
        assert_eq!(p.frames_drawn(), 12);
    }

    #[test]
    fn backoff_doubles_then_caps() {
        assert_eq!(backoff_slots(0), 1);
        assert_eq!(backoff_slots(1), 2);
        assert_eq!(backoff_slots(2), 4);
        assert_eq!(backoff_slots(6), MAX_BACKOFF_SLOTS);
        assert_eq!(backoff_slots(40), MAX_BACKOFF_SLOTS);
    }

    #[test]
    fn counters_and_reports_merge() {
        let a = FaultCounters {
            injected: 3,
            detected: 3,
            retried: 5,
            retry_exhausted: 1,
            failovers: 1,
            dropped_prefetch: 2,
        };
        let mut total = FaultReport {
            counters: a,
            degraded: Dur::from_ns(10),
        };
        total.merge(&FaultReport {
            counters: a,
            degraded: Dur::from_ns(5),
        });
        assert_eq!(total.counters.injected, 6);
        assert_eq!(total.counters.retried, 10);
        assert_eq!(total.degraded, Dur::from_ns(15));
        assert!(total.counters.any());
        assert!(!FaultCounters::default().any());
    }
}
