//! `fbd-core` — the full-system simulator for DRAM-level (AMB)
//! prefetching on Fully-Buffered DIMM.
//!
//! This crate wires the workspace's substrates into the systems the
//! paper evaluates:
//!
//! * **FBD** — FB-DIMM channels, no prefetching;
//! * **FBD-AP** — FB-DIMM with region-based AMB prefetching (the
//!   contribution);
//! * **FBD-APFL** — the full-latency ablation isolating the
//!   bandwidth-utilization gain;
//! * **DDR2** — the conventional shared-bus baseline.
//!
//! # Examples
//!
//! Run the `swim` workload on FB-DIMM with and without AMB prefetching,
//! and compare DRAM energy:
//!
//! ```
//! use fbd_core::RunSpec;
//!
//! let base = RunSpec::paper_default(1)
//!     .workload("1C-swim")
//!     .budget(20_000)
//!     .seed(7);
//! let fbd = base.clone().with_prefetch(false).run();
//! let with_ap = base.with_prefetch(true).run();
//!
//! assert!(with_ap.mem.amb_hits > 0, "streaming workload must hit the AMB cache");
//! assert!(with_ap.energy.total_nj() > 0.0);
//! assert!(fbd.energy.total_nj() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compose;
pub mod events;
pub mod experiment;
pub mod fidelity;
pub mod memsys;
pub mod parallel;
pub mod system;
pub mod trace_io;

pub use compose::Composition;
pub use experiment::{reference_ipcs, smt_speedup, ExperimentConfig, RunSpec, Warmup};
use fbd_telemetry::host::BuildInfo;
pub use fidelity::{
    calibrate, pareto_frontier, Calibration, Fidelity, CALIBRATION_FIT_POINTS,
    CALIBRATION_HOLDOUT_POINTS,
};
pub use memsys::{ChannelCounters, DecideResult, Issued, MemorySystem};
pub use parallel::parallel_map;
pub use system::{RunResult, System};
pub use trace_io::{replay, MemoryTrace, ReplayResult, TraceRecord};

/// Build provenance baked in at compile time by `build.rs`: crate
/// version, git SHA (with `-dirty` suffix), rustc version and cargo
/// profile. Attached to every [`RunResult`]'s host report and printed
/// by `fbdsim version`; fields fall back to `"unknown"` when git is
/// unavailable at build time.
pub fn build_info() -> BuildInfo {
    BuildInfo {
        version: env!("CARGO_PKG_VERSION").to_string(),
        git_sha: env!("FBD_GIT_SHA").to_string(),
        rustc: env!("FBD_RUSTC").to_string(),
        profile: env!("FBD_PROFILE").to_string(),
    }
}
