//! Error types shared across the workspace.

use core::fmt;

/// A configuration value failed validation.
///
/// Returned by the `validate` methods on the configuration structs in
/// [`crate::config`]. The message names the offending field and states
/// the constraint that was violated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    field: &'static str,
    reason: String,
}

impl ConfigError {
    /// Creates an error for `field` with a human-readable `reason`.
    pub fn new(field: &'static str, reason: impl Into<String>) -> ConfigError {
        ConfigError {
            field,
            reason: reason.into(),
        }
    }

    /// The configuration field that failed validation.
    pub fn field(&self) -> &'static str {
        self.field
    }

    /// Why the field is invalid.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config field `{}`: {}", self.field, self.reason)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_field_and_reason() {
        let err = ConfigError::new("banks_per_dimm", "must be a power of two");
        let s = err.to_string();
        assert!(s.contains("banks_per_dimm"));
        assert!(s.contains("power of two"));
        assert_eq!(err.field(), "banks_per_dimm");
        assert_eq!(err.reason(), "must be a power of two");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_e: E) {}
        takes_err(ConfigError::new("x", "y"));
    }
}
