//! Experiment helpers: running workloads, reference IPCs and the SMT
//! speedup metric (paper §4.2).
//!
//! `SMT speedup = Σ IPC_cmp[i] / IPC_single[i]`, where the reference
//! `IPC_single[i]` is the program's IPC alone on a single-core reference
//! system. The bench harness computes one reference set per figure, as
//! the paper does (Figure 4 references single-core DDR2 at the default
//! channel count; Figure 7 references two-channel DDR2).

use std::collections::HashMap;

use fbd_types::config::SystemConfig;
use fbd_workloads::Workload;

use crate::system::{RunResult, System};

/// L2 warm-up policy for a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Warmup {
    /// No warm-up (cold caches).
    None,
    /// Fast-forward enough trace operations to fill the shared L2
    /// roughly twice over (split across cores).
    #[default]
    Auto,
    /// Exactly this many operations per core.
    Ops(u64),
}

/// Run-control parameters shared by every experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Seed for the deterministic workload generators.
    pub seed: u64,
    /// Instructions each core must commit (the run stops when the first
    /// core gets there).
    pub budget: u64,
    /// L2 warm-up before measurement.
    pub warmup: Warmup,
}

impl ExperimentConfig {
    /// Defaults: seed 42, automatic L2 warm-up and the instruction
    /// budget from [`default_budget`].
    pub fn from_env() -> ExperimentConfig {
        ExperimentConfig {
            budget: default_budget(),
            ..ExperimentConfig::default()
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 42,
            budget: 300_000,
            warmup: Warmup::Auto,
        }
    }
}

/// The per-core instruction budget benches run with.
///
/// The paper simulates 100 M-instruction SimPoints; that is hours of
/// wall-clock across 27 workloads × many configurations, so benches
/// default to 300k instructions (results are stable well before that).
/// Set `FBD_BUDGET=<n>` to override, or `FBD_PAPER_MODE=1` for 2M.
pub fn default_budget() -> u64 {
    if let Ok(v) = std::env::var("FBD_BUDGET") {
        if let Ok(n) = v.parse::<u64>() {
            return n.max(1);
        }
    }
    match std::env::var("FBD_PAPER_MODE") {
        Ok(v) if v == "1" => 2_000_000,
        _ => 300_000,
    }
}

/// Runs `workload` on `cfg`.
///
/// # Panics
///
/// Panics if the configuration's core count does not match the
/// workload's, or if the configuration is invalid.
pub fn run_workload(cfg: &SystemConfig, workload: &Workload, exp: &ExperimentConfig) -> RunResult {
    assert_eq!(
        cfg.cpu.cores,
        workload.cores(),
        "core count must match workload {}",
        workload.name()
    );
    let traces = workload.traces(exp.seed);
    let warmup_ops = match exp.warmup {
        Warmup::None => 0,
        Warmup::Auto => {
            let l2_lines = u64::from(cfg.cpu.l2_bytes) / fbd_types::CACHE_LINE_BYTES;
            2 * l2_lines / u64::from(cfg.cpu.cores)
        }
        Warmup::Ops(n) => n,
    };
    System::with_warmup(cfg, traces, exp.budget, warmup_ops).run()
}

/// Computes each benchmark's single-core reference IPC on `ref_cfg`
/// (which must be a 1-core configuration). Returns name → IPC.
///
/// # Panics
///
/// Panics if `ref_cfg` is not single-core.
pub fn reference_ipcs(
    ref_cfg: &SystemConfig,
    benchmarks: &[&str],
    exp: &ExperimentConfig,
) -> HashMap<String, f64> {
    assert_eq!(ref_cfg.cpu.cores, 1, "reference runs are single-core");
    benchmarks
        .iter()
        .map(|name| {
            let w = Workload::new(format!("1C-{name}"), &[name]);
            let result = run_workload(ref_cfg, &w, exp);
            (name.to_string(), result.cores[0].ipc())
        })
        .collect()
}

/// The paper's SMT-speedup metric for one run.
///
/// # Panics
///
/// Panics if a benchmark of the workload has no reference IPC.
pub fn smt_speedup(
    workload: &Workload,
    result: &RunResult,
    references: &HashMap<String, f64>,
) -> f64 {
    workload
        .benchmarks()
        .iter()
        .zip(&result.cores)
        .map(|(bench, stats)| {
            let reference = references
                .get(bench.name)
                .unwrap_or_else(|| panic!("no reference IPC for {}", bench.name));
            stats.ipc() / reference
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_types::stats::{CoreStats, MemStats};
    use fbd_types::time::Dur;

    fn fake_result(ipcs: &[f64]) -> RunResult {
        RunResult {
            elapsed: Dur::from_ns(1_000),
            cores: ipcs
                .iter()
                .map(|&ipc| CoreStats {
                    instructions: (ipc * 1000.0) as u64,
                    cycles: 1000,
                    l2_misses: 0,
                    l2_accesses: 0,
                })
                .collect(),
            mem: MemStats::default(),
            channels: Vec::new(),
            trace: None,
            telemetry: None,
        }
    }

    #[test]
    fn smt_speedup_sums_per_core_ratios() {
        let w = Workload::new("2C-x", &["swim", "parser"]);
        let refs: HashMap<String, f64> = [("swim".to_string(), 0.5), ("parser".to_string(), 1.0)]
            .into_iter()
            .collect();
        let r = fake_result(&[1.0, 0.5]);
        // 1.0/0.5 + 0.5/1.0 = 2.5.
        let s = smt_speedup(&w, &r, &refs);
        assert!((s - 2.5).abs() < 1e-9, "{s}");
    }

    #[test]
    #[should_panic(expected = "no reference IPC")]
    fn smt_speedup_requires_references() {
        let w = Workload::new("1C-swim", &["swim"]);
        let r = fake_result(&[1.0]);
        let _ = smt_speedup(&w, &r, &HashMap::new());
    }

    #[test]
    #[should_panic(expected = "single-core")]
    fn reference_ipcs_rejects_multicore_config() {
        let cfg = fbd_types::config::SystemConfig::paper_default(2);
        let _ = reference_ipcs(&cfg, &["swim"], &ExperimentConfig::default());
    }

    #[test]
    #[should_panic(expected = "core count must match")]
    fn run_workload_rejects_core_mismatch() {
        let cfg = fbd_types::config::SystemConfig::paper_default(2);
        let w = Workload::new("1C-swim", &["swim"]);
        let _ = run_workload(&cfg, &w, &ExperimentConfig::default());
    }

    #[test]
    fn budget_env_parsing() {
        // No env manipulation (tests run in parallel): just check the
        // default path returns something positive.
        assert!(default_budget() >= 1);
    }
}
