//! Extension experiment: AMB prefetching under *hardware* cache
//! prefetching.
//!
//! The paper evaluates AMB prefetching with software prefetching and
//! predicts (§5.4): "We believe AMB prefetching will improve performance
//! similarly if hardware prefetching is used." This bench tests that
//! prediction with a stream prefetcher at the shared L2: it repeats the
//! Figure 12 matrix with HP (hardware prefetch) in place of SP.

use fbd_bench::*;
use fbd_types::config::HwPrefetchConfig;

fn main() {
    let exp = fbd_bench::experiment();
    banner(
        "Extension",
        "AMB prefetching × hardware stream prefetching (paper §5.4 prediction)",
        &exp,
    );

    // References: single-core DDR2 with no prefetching of any kind.
    let mut ref_cfg = system(Variant::Ddr2, 1);
    ref_cfg.cpu.software_prefetch = false;
    let refs = {
        let names = benchmark_names();
        let ipcs = parallel_map(&names, |name| {
            fbd_core::experiment::reference_ipcs(&ref_cfg, &[name], &exp)
                .remove(*name)
                .expect("reference")
        });
        names
            .into_iter()
            .map(String::from)
            .zip(ipcs)
            .collect::<std::collections::HashMap<_, _>>()
    };

    let mut rows = vec![vec![
        "group".to_string(),
        "none".to_string(),
        "AP".to_string(),
        "HP".to_string(),
        "AP+HP".to_string(),
        "AP+HP vs AP·HP".to_string(),
    ]];
    let grouped = run_grouped(
        |cores| {
            let mk = |ap: bool, hp: bool| {
                let mut cfg = system(if ap { Variant::FbdAp } else { Variant::Fbd }, cores);
                cfg.cpu.software_prefetch = false; // isolate HP from SP
                if hp {
                    cfg.cpu.hw_prefetch = HwPrefetchConfig::typical();
                }
                cfg
            };
            vec![
                ("none".to_string(), mk(false, false)),
                ("AP".to_string(), mk(true, false)),
                ("HP".to_string(), mk(false, true)),
                ("AP+HP".to_string(), mk(true, true)),
            ]
        },
        &exp,
    );
    for (group, workloads, results) in grouped {
        let avg = |label: &str| {
            let v: Vec<f64> = workloads
                .iter()
                .map(|w| {
                    results
                        .iter()
                        .find(|((c, n), _)| c == label && n == w.name())
                        .map(|(_, r)| speedup(w, r, &refs))
                        .expect("run")
                })
                .collect();
            mean(&v)
        };
        let none = avg("none");
        let (ap, hp, both) = (avg("AP") / none, avg("HP") / none, avg("AP+HP") / none);
        rows.push(vec![
            group.to_string(),
            "1.000".to_string(),
            f3(ap),
            f3(hp),
            f3(both),
            f3(both / (ap * hp)),
        ]);
    }
    emit_table("ext_hw_prefetch", &rows);
    println!();
    println!("prediction under test: AP's gain should survive HP roughly the way it survives SP (Figure 12)");
}
