//! Figure 12: interaction of AMB prefetching (AP) with software cache
//! prefetching (SP) — relative SMT speedup of AP, SP and AP+SP over a
//! system with neither.
//!
//! Expected shape (paper §5.4): SP alone beats AP alone on 1–4 cores but
//! fades with core count (below AP at 8 cores); AP+SP ≈ AP + SP — the
//! two prefetchers are complementary.

use fbd_bench::*;

fn main() {
    let exp = fbd_bench::experiment();
    banner("Figure 12", "AMB prefetching vs software prefetching", &exp);

    // References: single-core DDR2 with software prefetching *off*, so
    // the "none" system normalizes near 1.0.
    let mut ref_cfg = system(Variant::Ddr2, 1);
    ref_cfg.cpu.software_prefetch = false;
    let refs = {
        let names = benchmark_names();
        let ipcs = parallel_map(&names, |name| {
            fbd_core::experiment::reference_ipcs(&ref_cfg, &[name], &exp)
                .remove(*name)
                .expect("reference")
        });
        names
            .into_iter()
            .map(String::from)
            .zip(ipcs)
            .collect::<std::collections::HashMap<_, _>>()
    };

    let mut rows = vec![vec![
        "group".to_string(),
        "none".to_string(),
        "AP".to_string(),
        "SP".to_string(),
        "AP+SP".to_string(),
        "AP+SP vs AP·SP".to_string(),
    ]];
    let grouped = run_grouped(
        |cores| {
            let mk = |ap: bool, sp: bool| {
                let mut cfg = system(if ap { Variant::FbdAp } else { Variant::Fbd }, cores);
                cfg.cpu.software_prefetch = sp;
                cfg
            };
            vec![
                ("none".to_string(), mk(false, false)),
                ("AP".to_string(), mk(true, false)),
                ("SP".to_string(), mk(false, true)),
                ("AP+SP".to_string(), mk(true, true)),
            ]
        },
        &exp,
    );
    for (group, workloads, results) in grouped {
        let avg = |label: &str| {
            let v: Vec<f64> = workloads
                .iter()
                .map(|w| {
                    results
                        .iter()
                        .find(|((c, n), _)| c == label && n == w.name())
                        .map(|(_, r)| speedup(w, r, &refs))
                        .expect("run")
                })
                .collect();
            mean(&v)
        };
        let none = avg("none");
        let (ap, sp, both) = (avg("AP") / none, avg("SP") / none, avg("AP+SP") / none);
        // Additivity check: AP+SP speedup vs the product of the
        // individual speedups (1.0 = perfectly complementary).
        let additivity = both / (ap * sp);
        rows.push(vec![
            group.to_string(),
            "1.000".to_string(),
            f3(ap),
            f3(sp),
            f3(both),
            f3(additivity),
        ]);
    }
    emit_table("fig12_sw_prefetch", &rows);
    println!();
    println!("paper: SP > AP on 1-4 cores, AP > SP at 8 cores; AP+SP close to the sum of the individual gains");
}
