//! The FB-DIMM channel: southbound and northbound links and the AMB
//! daisy chain (paper §2).
//!
//! Both links are unidirectional and independently scheduled by the
//! memory controller. Per 6 ns frame (two DRAM clocks at 667 MT/s) a
//! physical southbound link carries three commands *or* one command plus
//! 16 bytes of write data; a physical northbound link carries 32 bytes of
//! read data. Two physical channels ganged into a logical channel move a
//! whole 64-byte line per frame time northbound, and commands are
//! broadcast to both members of the gang.
//!
//! The daisy chain adds a per-AMB forwarding delay. Without Variable Read
//! Latency (the paper's default) every access is charged the delay of the
//! farthest DIMM; with VRL the delay depends on the DIMM's position.

use fbd_faults::{backoff_slots, probe_delay, FaultCounters, FaultProcess, FaultReport, LinkDir};
use fbd_types::config::{MemoryConfig, MemoryTech};
use fbd_types::time::{Dur, Time};
use fbd_types::CACHE_LINE_BYTES;

use crate::timeline::Timeline;

/// Payload bits per southbound frame per physical link: 10 lanes × 12
/// transfers (the FB-DIMM frame format; CRC exposure scales with it).
const SOUTH_BITS_PER_FRAME: u32 = 120;

/// Payload bits per northbound frame per physical link: 14 lanes × 12
/// transfers.
const NORTH_BITS_PER_FRAME: u32 = 168;

/// A granted link reservation: where the transfer sits on the wire and
/// when its payload is usable at the far end.
///
/// `start`/`dur` describe link *occupancy* (what an event tracer draws
/// on the frame timeline); `done` is the *latency* endpoint — command
/// arrival at the AMBs southbound, the critical line's arrival at the
/// controller northbound — which includes transit and daisy-chain
/// delays that occupy no link time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkSlot {
    /// First instant the transfer occupies the link.
    pub start: Time,
    /// Time the transfer occupies the link.
    pub dur: Dur,
    /// When the payload is available at the receiver.
    pub done: Time,
}

impl LinkSlot {
    /// How long the transfer waited for the wire: the gap between the
    /// instant its payload was `ready` to send and the granted `start`.
    /// Zero when the link was free immediately.
    pub fn queue_wait(&self, ready: Time) -> Dur {
        self.start.saturating_since(ready)
    }
}

/// A link transfer after CRC checking and recovery: the final granted
/// slot plus everything the recovery machinery did to get there.
///
/// When fault injection is off (or the transfer sailed through clean)
/// this is just the plain [`LinkSlot`] with no retry history.
#[derive(Clone, Debug)]
pub struct LinkXfer {
    /// The delivering reservation — the successful replay, or the
    /// corrupted original for a dropped prefetch transfer.
    pub slot: LinkSlot,
    /// Start of the *first* attempt (the queue-wait boundary; replays
    /// never start earlier than this).
    pub first_start: Time,
    /// `done` of the *first* attempt: the stage boundary up to which
    /// time is charged to the link stage; everything between this and
    /// `slot.done` is retry time.
    pub first_done: Time,
    /// Corrupted attempts that occupied the wire before the delivering
    /// one, in issue order (for the trace's retry track).
    pub failed: Vec<LinkSlot>,
    /// Replay attempts performed.
    pub retries: u32,
    /// True when the corrupted transfer was dropped instead of replayed
    /// (northbound prefetch data under the AMB drop rule).
    pub dropped: bool,
    /// True when this transfer exhausted its retry budget and forced
    /// the lane fail-over.
    pub failover: bool,
    /// True when the transfer was corrupted but aliased past the CRC
    /// check: it delivered on clean timing, silently carrying bad data
    /// (the consumer must poison the line).
    pub escaped: bool,
}

impl LinkXfer {
    /// A transfer that needed no recovery.
    fn clean(slot: LinkSlot) -> LinkXfer {
        LinkXfer {
            slot,
            first_start: slot.start,
            first_done: slot.done,
            failed: Vec::new(),
            retries: 0,
            dropped: false,
            failover: false,
            escaped: false,
        }
    }

    /// Time between the first attempt's completion boundary and the
    /// delivering one — what the controller charges to the `retry`
    /// stage.
    pub fn retry_time(&self) -> Dur {
        self.slot.done.saturating_since(self.first_done)
    }
}

/// The kind of transfer being recovered (which primitive to replay).
#[derive(Clone, Copy, Debug)]
enum XferKind {
    Command,
    WriteData,
    ReadData { dimm: u32 },
}

impl XferKind {
    fn dir(self) -> LinkDir {
        match self {
            XferKind::Command | XferKind::WriteData => LinkDir::South,
            XferKind::ReadData { .. } => LinkDir::North,
        }
    }
}

/// Frames one fail-back probe pattern occupies (a short training
/// sequence the controller sends on the mapped-out lane).
const PROBE_FRAMES: u64 = 4;

/// Per-channel fault state: one error process per link direction plus
/// the recovery bookkeeping.
#[derive(Clone, Debug)]
struct ChannelFaults {
    processes: [FaultProcess; 2],
    /// Injection live per direction; cleared by fail-over (the bad lane
    /// is mapped out, the surviving lanes are assumed healthy) and
    /// restored by a successful fail-back probe.
    live: [bool; 2],
    /// When each direction dropped to the degraded lane map.
    degraded_since: [Option<Time>; 2],
    max_retries: u32,
    counters: FaultCounters,
    /// Earliest instant the next fail-back probe may run per direction;
    /// `None` when no probe is pending (lane healthy, fail-back
    /// disabled, or the probe/flap budget is spent).
    probe_at: [Option<Time>; 2],
    /// Failed probes since this direction degraded (drives the
    /// exponential probe schedule).
    probe_count: [u32; 2],
    /// Completed fail-overs *after* a fail-back per direction — the
    /// flap count; lanes that keep flapping stay failed for good.
    flaps: [u32; 2],
    /// Degraded residency of closed degradation spans (spans still open
    /// at end of run are added by [`FbdChannel::fault_report`]).
    degraded_total: Dur,
    /// Quiet period before the first re-probe; zero disables fail-back.
    failback_quiet: Dur,
    /// Probes allowed per degradation before giving the lane up.
    failback_max_probes: u32,
    /// Fail-over → fail-back round trips allowed per direction.
    failback_max_flaps: u32,
}

/// One logical FB-DIMM channel's southbound + northbound links.
#[derive(Clone, Debug)]
pub struct FbdChannel {
    south: Timeline,
    north: Timeline,
    /// Time one command occupies the southbound link (a frame carries 3).
    cmd_slot: Dur,
    /// Southbound time for a full line of write data.
    write_slot: Dur,
    /// Northbound time for a full line of read data.
    read_slot: Dur,
    /// Transit latency of a command from controller onto the chain.
    cmd_transit: Dur,
    /// Frame time (backoff and error-process draws are frame-granular).
    frame: Dur,
    chain: DaisyChain,
    /// Fault injection state; `None` keeps the fault-free path
    /// bit-identical to a build without the fault layer.
    faults: Option<Box<ChannelFaults>>,
}

/// Per-AMB daisy-chain delay model.
#[derive(Clone, Copy, Debug)]
pub struct DaisyChain {
    hop: Dur,
    dimms: u32,
    vrl: bool,
}

impl DaisyChain {
    /// Creates a chain of `dimms` AMBs with `hop` forwarding delay each.
    ///
    /// # Panics
    ///
    /// Panics if `dimms` is zero.
    pub fn new(hop: Dur, dimms: u32, vrl: bool) -> DaisyChain {
        assert!(dimms > 0, "a channel must have at least one DIMM");
        DaisyChain { hop, dimms, vrl }
    }

    /// Total AMB forwarding delay charged to an access of DIMM `dimm`.
    ///
    /// Without VRL this is the farthest DIMM's delay regardless of the
    /// target (fixed read latency); with VRL it is proportional to the
    /// target's position.
    ///
    /// # Panics
    ///
    /// Panics if `dimm` is out of range.
    pub fn amb_delay(&self, dimm: u32) -> Dur {
        assert!(dimm < self.dimms, "dimm {dimm} out of range");
        if self.vrl {
            self.hop * u64::from(dimm + 1)
        } else {
            self.hop * u64::from(self.dimms)
        }
    }
}

impl FbdChannel {
    /// Builds one logical channel from the memory configuration
    /// (channel index 0 for fault-stream derivation; multi-channel
    /// subsystems should use [`for_channel`](Self::for_channel)).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not an FB-DIMM one.
    pub fn new(cfg: &MemoryConfig) -> FbdChannel {
        FbdChannel::for_channel(cfg, 0)
    }

    /// Builds logical channel `channel` from the memory configuration.
    /// The index seeds the per-channel fault streams, so different
    /// channels see independent (but reproducible) error patterns.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not an FB-DIMM one.
    pub fn for_channel(cfg: &MemoryConfig, channel: u32) -> FbdChannel {
        let vrl = match cfg.tech {
            MemoryTech::FbDimm { vrl } => vrl,
            MemoryTech::Ddr2 => panic!("FbdChannel requires an FB-DIMM configuration"),
        };
        let clock = cfg.data_rate.clock_period();
        let frame = clock * 2;
        let gang = u64::from(cfg.phys_per_logical);
        // Northbound: 32 B per frame per physical link.
        let frames_per_line_north = (CACHE_LINE_BYTES / 32).div_ceil(gang);
        // Southbound: 16 B per frame per physical link.
        let frames_per_line_south = (CACHE_LINE_BYTES / 16).div_ceil(gang);
        let faults = cfg.faults.is_active().then(|| {
            let bits = |per_link: u32| per_link * cfg.phys_per_logical;
            Box::new(ChannelFaults {
                processes: [
                    FaultProcess::new(
                        &cfg.faults,
                        channel,
                        LinkDir::South,
                        bits(SOUTH_BITS_PER_FRAME),
                    ),
                    FaultProcess::new(
                        &cfg.faults,
                        channel,
                        LinkDir::North,
                        bits(NORTH_BITS_PER_FRAME),
                    ),
                ],
                live: [true; 2],
                degraded_since: [None; 2],
                max_retries: cfg.faults.max_retries,
                counters: FaultCounters::default(),
                probe_at: [None; 2],
                probe_count: [0; 2],
                flaps: [0; 2],
                degraded_total: Dur::ZERO,
                failback_quiet: Dur::from_ns(cfg.faults.failback_quiet_ns),
                failback_max_probes: cfg.faults.failback_max_probes,
                failback_max_flaps: cfg.faults.failback_max_flaps,
            })
        });
        // Southbound slots are command-sized (3 per frame) so that three
        // commands really fit in one frame; northbound slots are
        // clock-sized.
        FbdChannel {
            south: Timeline::new(frame / 3),
            north: Timeline::new(clock),
            cmd_slot: frame / 3,
            write_slot: frame * frames_per_line_south,
            read_slot: frame * frames_per_line_north,
            cmd_transit: clock,
            frame,
            chain: DaisyChain::new(cfg.amb_hop_delay, cfg.dimms_per_channel, vrl),
            faults,
        }
    }

    /// Sends a command southbound at or after `not_before`; the slot's
    /// `done` is the instant the command *arrives at the AMBs* (send
    /// slot + transit).
    pub fn send_command(&mut self, not_before: Time) -> LinkSlot {
        let start = self.south.reserve(not_before, self.cmd_slot);
        LinkSlot {
            start,
            dur: self.cmd_slot,
            done: start + self.cmd_transit,
        }
    }

    /// Streams a line of write data southbound at or after `not_before`;
    /// the slot's `done` is the instant the last byte arrives at the
    /// AMBs.
    pub fn send_write_data(&mut self, not_before: Time) -> LinkSlot {
        let start = self.south.reserve(not_before, self.write_slot);
        LinkSlot {
            start,
            dur: self.write_slot,
            done: start + self.write_slot + self.cmd_transit,
        }
    }

    /// Returns a line of read data northbound from DIMM `dimm`. The AMB
    /// cuts the data through as it is produced, so the transfer may start
    /// at `data_ready` (when the first beats exist at the AMB); the
    /// critical line reaches the controller after the northbound frame
    /// plus the daisy-chain delay.
    ///
    /// The slot's `done` is the completion instant at the controller.
    pub fn return_read_data(&mut self, dimm: u32, data_ready: Time) -> LinkSlot {
        let start = self.north.reserve(data_ready, self.read_slot);
        LinkSlot {
            start,
            dur: self.read_slot,
            done: start + self.read_slot + self.chain.amb_delay(dimm),
        }
    }

    /// Like [`send_command`](Self::send_command), but subject to the
    /// channel's fault process: a corrupted command frame is replayed
    /// with bounded retries and exponential backoff. Identical to the
    /// unchecked call when fault injection is off.
    pub fn send_command_checked(&mut self, not_before: Time) -> LinkXfer {
        self.transfer(XferKind::Command, not_before, false)
    }

    /// Like [`send_write_data`](Self::send_write_data), but subject to
    /// the fault process (write data must be delivered, so corrupted
    /// frames always replay).
    pub fn send_write_data_checked(&mut self, not_before: Time) -> LinkXfer {
        self.transfer(XferKind::WriteData, not_before, false)
    }

    /// Like [`return_read_data`](Self::return_read_data), but subject to
    /// the fault process. `droppable` marks prefetch data: a corrupted
    /// droppable transfer is *not* replayed — the AMB/controller just
    /// discards it (the line is not cached) and the returned transfer
    /// has [`LinkXfer::dropped`] set. Demand data always replays.
    pub fn return_read_data_checked(
        &mut self,
        dimm: u32,
        data_ready: Time,
        droppable: bool,
    ) -> LinkXfer {
        self.transfer(XferKind::ReadData { dimm }, data_ready, droppable)
    }

    /// Issues one wire occupancy of `kind` (shared by the first attempt
    /// and every replay; replays pick up degraded slot widths
    /// automatically because the slot fields themselves are degraded).
    fn issue(&mut self, kind: XferKind, not_before: Time) -> LinkSlot {
        match kind {
            XferKind::Command => self.send_command(not_before),
            XferKind::WriteData => self.send_write_data(not_before),
            XferKind::ReadData { dimm } => self.return_read_data(dimm, not_before),
        }
    }

    /// Frames a transfer of `kind` currently occupies (error-process
    /// draws are per frame; a command rides in one frame).
    fn frames_of(&self, kind: XferKind) -> u64 {
        let dur = match kind {
            XferKind::Command => return 1,
            XferKind::WriteData => self.write_slot,
            XferKind::ReadData { .. } => self.read_slot,
        };
        dur.as_ps().div_ceil(self.frame.as_ps()).max(1)
    }

    /// Draws the fault process for one attempt of `kind`; false when
    /// injection is off or the direction already failed over.
    fn draw(&mut self, kind: XferKind) -> bool {
        let frames = self.frames_of(kind);
        let dir = kind.dir();
        match self.faults.as_mut() {
            Some(f) if f.live[dir.index()] => f.processes[dir.index()].corrupt_transfer(frames),
            _ => false,
        }
    }

    /// Maps out the failed lane on `dir` at `at`: injection stops (the
    /// defective lane is gone), and the direction's transfers widen to
    /// twice their slot time — the half-width lane map carries half the
    /// bandwidth until a fail-back probe (if enabled) restores it.
    fn fail_over(&mut self, dir: LinkDir, at: Time) {
        let f = self.faults.as_mut().expect("fail-over without faults");
        f.counters.failovers += 1;
        f.live[dir.index()] = false;
        f.degraded_since[dir.index()].get_or_insert(at);
        // Schedule the first re-probe after the quiet period —
        // unless fail-back is off or this lane has flapped too often
        // (hysteresis: a repeat offender stays failed).
        f.probe_count[dir.index()] = 0;
        f.probe_at[dir.index()] = (!f.failback_quiet.is_zero()
            && f.flaps[dir.index()] < f.failback_max_flaps)
            .then(|| at + f.failback_quiet);
        match dir {
            LinkDir::South => {
                self.cmd_slot = self.cmd_slot * 2;
                self.write_slot = self.write_slot * 2;
            }
            LinkDir::North => self.read_slot = self.read_slot * 2,
        }
    }

    /// Runs a due fail-back probe on `dir`, if any: a short training
    /// pattern on the mapped-out lane. A clean probe restores the
    /// full-width lane map (and re-arms injection — the lane may fail
    /// again, which counts as a flap); a corrupted one reschedules on
    /// the bounded exponential probe schedule until the probe budget is
    /// spent. Probes are opportunistic — they piggyback on the next
    /// transfer at or after their due time, costing no link occupancy.
    fn maybe_failback(&mut self, dir: LinkDir, now: Time) {
        let Some(f) = self.faults.as_mut() else {
            return;
        };
        let i = dir.index();
        match f.probe_at[i] {
            Some(due) if due <= now && !f.live[i] => {}
            _ => return,
        }
        f.counters.probes += 1;
        // A stuck-lane defect is permanent silicon damage: its probes
        // never pass. Transient processes re-draw the error stream.
        let clean = !f.processes[i].is_stuck() && !f.processes[i].corrupt_transfer(PROBE_FRAMES);
        if clean {
            f.counters.failbacks += 1;
            f.flaps[i] += 1;
            f.live[i] = true;
            f.probe_at[i] = None;
            f.probe_count[i] = 0;
            if let Some(since) = f.degraded_since[i].take() {
                f.degraded_total += now.saturating_since(since);
            }
            match dir {
                LinkDir::South => {
                    self.cmd_slot = self.cmd_slot / 2;
                    self.write_slot = self.write_slot / 2;
                }
                LinkDir::North => self.read_slot = self.read_slot / 2,
            }
        } else {
            f.probe_count[i] += 1;
            f.probe_at[i] = (f.probe_count[i] < f.failback_max_probes)
                .then(|| now + probe_delay(f.failback_quiet, f.probe_count[i]));
        }
    }

    /// The CRC/retry state machine around one wire transfer: detect a
    /// corrupted attempt, replay it after exponential backoff, and
    /// escalate to lane fail-over when the retry budget runs out.
    fn transfer(&mut self, kind: XferKind, not_before: Time, droppable: bool) -> LinkXfer {
        self.maybe_failback(kind.dir(), not_before);
        let first = self.issue(kind, not_before);
        if self.faults.is_none() {
            return LinkXfer::clean(first);
        }
        let mut xfer = LinkXfer::clean(first);
        if !self.draw(kind) {
            return xfer;
        }
        let f = self.faults.as_mut().expect("checked above");
        f.counters.injected += 1;
        if f.processes[kind.dir().index()].escapes() {
            // The corruption aliased to a valid CRC codeword: the
            // transfer delivers on clean timing, silently bad.
            f.counters.escaped += 1;
            xfer.escaped = true;
            return xfer;
        }
        f.counters.detected += 1;
        if droppable {
            f.counters.dropped_prefetch += 1;
            xfer.dropped = true;
            return xfer;
        }
        let mut attempt = 0u32;
        let mut prev = first;
        loop {
            if attempt >= self.faults.as_ref().expect("checked above").max_retries {
                // Retry budget exhausted: declare the lane dead, fail
                // over to the degraded map, and force-deliver on it
                // (injection is off for this direction from here on).
                let f = self.faults.as_mut().expect("checked above");
                f.counters.retry_exhausted += 1;
                let dir = kind.dir();
                self.fail_over(dir, prev.start + prev.dur);
                let slot = self.issue(kind, prev.start + prev.dur);
                xfer.failed.push(prev);
                xfer.retries = attempt + 1;
                xfer.failover = true;
                xfer.slot = slot;
                self.faults
                    .as_mut()
                    .expect("checked above")
                    .counters
                    .retried += 1;
                return xfer;
            }
            // Back off 2^attempt frame slots from the end of the failed
            // occupancy, then replay.
            let backoff = self.frame * backoff_slots(attempt);
            let slot = self.issue(kind, prev.start + prev.dur + backoff);
            let f = self.faults.as_mut().expect("checked above");
            f.counters.retried += 1;
            xfer.failed.push(prev);
            attempt += 1;
            if !self.draw(kind) {
                xfer.retries = attempt;
                xfer.slot = slot;
                return xfer;
            }
            let f = self.faults.as_mut().expect("checked above");
            f.counters.injected += 1;
            if f.processes[kind.dir().index()].escapes() {
                // A corrupted *replay* aliasing through: accepted as
                // the delivering attempt, silently bad.
                f.counters.escaped += 1;
                xfer.escaped = true;
                xfer.retries = attempt;
                xfer.slot = slot;
                return xfer;
            }
            f.counters.detected += 1;
            prev = slot;
        }
    }

    /// The channel's error/recovery counters, when fault injection is
    /// active.
    pub fn fault_counters(&self) -> Option<&FaultCounters> {
        self.faults.as_deref().map(|f| &f.counters)
    }

    /// End-of-run fault summary: counters plus the degraded-width
    /// residency of both directions up to `end`. `None` when fault
    /// injection is off.
    pub fn fault_report(&self, end: Time) -> Option<FaultReport> {
        self.faults.as_deref().map(|f| FaultReport {
            counters: f.counters,
            degraded: f.degraded_total
                + f.degraded_since
                    .iter()
                    .flatten()
                    .map(|&since| end.saturating_since(since))
                    .sum(),
            silent: Default::default(),
        })
    }

    /// Northbound transfer time for one line (the "6 ns data transfer" of
    /// the paper's latency decomposition).
    pub fn read_slot(&self) -> Dur {
        self.read_slot
    }

    /// The daisy chain (for latency decomposition in tests).
    pub fn chain(&self) -> &DaisyChain {
        &self.chain
    }

    /// Bytes carried so far (south + north), for utilization reporting.
    pub fn carried_time(&self) -> (Dur, Dur) {
        (self.south.carried(), self.north.carried())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_types::config::MemoryConfig;

    fn channel() -> FbdChannel {
        FbdChannel::new(&MemoryConfig::fbdimm_default())
    }

    #[test]
    fn default_slots_match_paper_decomposition() {
        let ch = channel();
        // Ganged pair at 667 MT/s: 64 B northbound in one 6 ns frame.
        assert_eq!(ch.read_slot, Dur::from_ns(6));
        // Write data: 64 B at 2×16 B per frame = 2 frames = 12 ns.
        assert_eq!(ch.write_slot, Dur::from_ns(12));
        // Commands: 3 per 6 ns frame.
        assert_eq!(ch.cmd_slot, Dur::from_ns(2));
        assert_eq!(ch.cmd_transit, Dur::from_ns(3));
    }

    #[test]
    fn command_arrival_includes_transit() {
        let mut ch = channel();
        let slot = ch.send_command(Time::from_ns(12));
        assert_eq!(slot.start, Time::from_ns(12));
        assert_eq!(slot.dur, Dur::from_ns(2));
        assert_eq!(slot.done, Time::from_ns(15));
    }

    #[test]
    fn no_vrl_charges_farthest_dimm_delay() {
        let chain = DaisyChain::new(Dur::from_ns(3), 4, false);
        assert_eq!(chain.amb_delay(0), Dur::from_ns(12));
        assert_eq!(chain.amb_delay(3), Dur::from_ns(12));
    }

    #[test]
    fn vrl_delay_scales_with_position() {
        let chain = DaisyChain::new(Dur::from_ns(3), 4, true);
        assert_eq!(chain.amb_delay(0), Dur::from_ns(3));
        assert_eq!(chain.amb_delay(3), Dur::from_ns(12));
    }

    #[test]
    fn read_return_composes_frame_and_chain() {
        let mut ch = channel();
        // Data ready at the AMB at 45 ns → 45 + 6 (frame) + 12 (chain).
        let slot = ch.return_read_data(2, Time::from_ns(45));
        assert_eq!(slot.start, Time::from_ns(45));
        assert_eq!(slot.dur, Dur::from_ns(6));
        assert_eq!(slot.done, Time::from_ns(63));
    }

    #[test]
    fn northbound_serializes_concurrent_returns() {
        let mut ch = channel();
        let d1 = ch.return_read_data(0, Time::from_ns(45));
        let d2 = ch.return_read_data(1, Time::from_ns(45));
        assert_eq!(d1.done, Time::from_ns(63));
        assert_eq!(d2.done, Time::from_ns(69)); // queued one frame later
        assert_eq!(d2.start, d1.start + d1.dur, "frames must be back to back");
    }

    #[test]
    fn southbound_interleaves_commands_between_write_data() {
        let mut ch = channel();
        let w = ch.send_write_data(Time::ZERO); // occupies [0,12)
        assert_eq!(w.start, Time::ZERO);
        assert_eq!(w.dur, Dur::from_ns(12));
        assert_eq!(w.done, Time::from_ns(15));
        let c = ch.send_command(Time::ZERO);
        assert_eq!(c.start, Time::from_ns(12)); // first free slot after data
        assert_eq!(c.done, Time::from_ns(15)); // slot [12,14) + 3 transit
    }

    #[test]
    #[should_panic(expected = "FB-DIMM configuration")]
    fn ddr2_config_rejected() {
        let _ = FbdChannel::new(&MemoryConfig::ddr2_default());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_dimm_rejected() {
        let chain = DaisyChain::new(Dur::from_ns(3), 4, false);
        let _ = chain.amb_delay(4);
    }

    fn faulty_channel(ber: f64, max_retries: u32) -> FbdChannel {
        let mut cfg = MemoryConfig::fbdimm_default();
        cfg.faults.ber = ber;
        cfg.faults.max_retries = max_retries;
        FbdChannel::for_channel(&cfg, 0)
    }

    #[test]
    fn checked_calls_match_unchecked_when_faults_off() {
        let mut plain = channel();
        let mut checked = channel();
        assert!(checked.fault_counters().is_none());
        assert!(checked.fault_report(Time::from_ns(100)).is_none());
        for t in [0u64, 0, 7, 30] {
            let a = plain.send_command(Time::from_ns(t));
            let b = checked.send_command_checked(Time::from_ns(t));
            assert_eq!(a, b.slot);
            assert_eq!(b.retry_time(), Dur::ZERO);
            assert!(!b.dropped && b.failed.is_empty());
        }
        let a = plain.return_read_data(1, Time::from_ns(50));
        let b = checked.return_read_data_checked(1, Time::from_ns(50), true);
        assert_eq!(a, b.slot);
    }

    #[test]
    fn certain_corruption_retries_with_backoff_then_fails_over() {
        // BER 1 corrupts every frame, so the first command exhausts its
        // retry budget and forces the southbound fail-over.
        let mut ch = faulty_channel(1.0, 2);
        let xfer = ch.send_command_checked(Time::ZERO);
        assert!(xfer.failover);
        assert_eq!(xfer.retries, 3); // 2 replays + the forced delivery
        assert_eq!(xfer.failed.len(), 3); // original + 2 corrupted replays
        assert!(xfer.retry_time() > Dur::ZERO);
        // Backoff: replay 1 waits 1 frame (6 ns) after the 2 ns slot,
        // replay 2 waits 2 frames after that.
        assert_eq!(xfer.failed[1].start, Time::from_ns(8));
        assert_eq!(xfer.failed[2].start, Time::from_ns(22));
        let c = ch.fault_counters().unwrap();
        assert_eq!(c.failovers, 1);
        assert_eq!(c.retry_exhausted, 1);
        assert_eq!(c.injected, 3);
        assert_eq!(c.detected, c.injected);
        // Post-fail-over the southbound lane map is half width: command
        // slots doubled, and injection on that direction is over.
        assert_eq!(ch.cmd_slot, Dur::from_ns(4));
        assert_eq!(ch.write_slot, Dur::from_ns(24));
        let clean = ch.send_command_checked(Time::from_ns(100));
        assert!(clean.failed.is_empty());
        assert!(ch.fault_report(Time::from_ns(100)).unwrap().degraded > Dur::ZERO);
    }

    #[test]
    fn corrupted_prefetch_data_is_dropped_not_retried() {
        let mut ch = faulty_channel(1.0, 4);
        let xfer = ch.return_read_data_checked(0, Time::from_ns(45), true);
        assert!(xfer.dropped);
        assert_eq!(xfer.retries, 0);
        assert_eq!(xfer.retry_time(), Dur::ZERO);
        // The wire was still occupied by the corrupted frame.
        assert_eq!(xfer.slot.start, Time::from_ns(45));
        let c = ch.fault_counters().unwrap();
        assert_eq!(c.dropped_prefetch, 1);
        assert_eq!(c.retried, 0);
        // Demand data on the same channel replays instead.
        let demand = ch.return_read_data_checked(0, Time::from_ns(100), false);
        assert!(!demand.dropped);
        assert!(demand.retries > 0);
    }

    #[test]
    fn escaped_transfers_deliver_silently_on_clean_timing() {
        let mut cfg = MemoryConfig::fbdimm_default();
        cfg.faults.ber = 1.0; // every frame corrupt
        cfg.faults.crc_bits = 1; // ...and half the corruptions alias
        cfg.faults.max_retries = 64;
        let mut ch = FbdChannel::for_channel(&cfg, 0);
        let mut escaped = 0u32;
        for i in 0..64u64 {
            let xfer = ch.send_command_checked(Time::from_ns(i * 1_000));
            if xfer.escaped {
                escaped += 1;
                assert!(!xfer.dropped && !xfer.failover);
            }
        }
        assert!(escaped > 0, "p=0.5 escapes over 64 transfers must hit");
        let c = ch.fault_counters().unwrap();
        assert_eq!(c.escaped + c.detected, c.injected);
        assert!(c.escaped >= u64::from(escaped));
    }

    #[test]
    fn ideal_crc_keeps_the_fault_stream_unchanged() {
        // crc_bits = 0 must not consume extra rng draws: the recovery
        // timeline is bit-identical to a build that never asks about
        // escapes (the zero-cost-when-disabled contract at link level).
        let run = |crc_bits: u32| {
            let mut cfg = MemoryConfig::fbdimm_default();
            cfg.faults.ber = 0.01;
            cfg.faults.max_retries = 4;
            cfg.faults.crc_bits = crc_bits;
            let mut ch = FbdChannel::for_channel(&cfg, 0);
            (0..200u64)
                .map(|i| ch.send_command_checked(Time::from_ns(i * 40)).slot.done)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(0), run(0));
    }

    #[test]
    fn failback_restores_full_width_after_clean_probe() {
        let mut cfg = MemoryConfig::fbdimm_default();
        cfg.faults.ber = 1e-9; // healthy lane: probes pass
        cfg.faults.failback_quiet_ns = 500;
        let mut ch = FbdChannel::for_channel(&cfg, 0);
        ch.fail_over(LinkDir::South, Time::from_ns(100));
        assert_eq!(ch.cmd_slot, Dur::from_ns(4));
        // Before the quiet period elapses nothing probes.
        let _ = ch.send_command_checked(Time::from_ns(200));
        assert_eq!(ch.fault_counters().unwrap().probes, 0);
        assert_eq!(ch.cmd_slot, Dur::from_ns(4));
        // The first transfer past the due time piggybacks the probe;
        // the clean lane comes back at full width.
        let xfer = ch.send_command_checked(Time::from_ns(700));
        assert_eq!(xfer.slot.dur, Dur::from_ns(2), "restored width applies");
        let c = ch.fault_counters().unwrap();
        assert_eq!(c.probes, 1);
        assert_eq!(c.failbacks, 1);
        assert_eq!(ch.cmd_slot, Dur::from_ns(2));
        assert_eq!(ch.write_slot, Dur::from_ns(12));
        // The closed degradation span (100 ns → 700 ns) is residency.
        let report = ch.fault_report(Time::from_ns(10_000)).unwrap();
        assert_eq!(report.degraded, Dur::from_ns(600));
    }

    #[test]
    fn failed_probes_follow_the_bounded_schedule_then_give_up() {
        let mut cfg = MemoryConfig::fbdimm_default();
        cfg.faults.ber = 1.0; // lane still broken: every probe fails
        cfg.faults.max_retries = 1;
        cfg.faults.failback_quiet_ns = 1_000;
        cfg.faults.failback_max_probes = 3;
        let mut ch = FbdChannel::for_channel(&cfg, 0);
        // BER 1 fails the first command over immediately.
        let _ = ch.send_command_checked(Time::ZERO);
        assert_eq!(ch.fault_counters().unwrap().failovers, 1);
        // Drive transfers far apart so every pending probe comes due.
        for i in 1..100u64 {
            let _ = ch.send_command_checked(Time::from_ns(i * 100_000));
        }
        let c = ch.fault_counters().unwrap();
        assert_eq!(c.probes, 3, "probe budget bounds the schedule");
        assert_eq!(c.failbacks, 0);
        assert_eq!(ch.cmd_slot, Dur::from_ns(4), "lane stays degraded");
    }

    #[test]
    fn flapping_lanes_stay_failed() {
        let mut cfg = MemoryConfig::fbdimm_default();
        cfg.faults.ber = 1e-9;
        cfg.faults.failback_quiet_ns = 500;
        cfg.faults.failback_max_flaps = 1;
        let mut ch = FbdChannel::for_channel(&cfg, 0);
        // First degradation: fails back after the quiet period.
        ch.fail_over(LinkDir::North, Time::from_ns(100));
        let _ = ch.return_read_data_checked(0, Time::from_ns(700), false);
        assert_eq!(ch.fault_counters().unwrap().failbacks, 1);
        assert_eq!(ch.read_slot, Dur::from_ns(6));
        // Second degradation: the flap budget is spent — no probe is
        // ever scheduled and the lane stays at half width.
        ch.fail_over(LinkDir::North, Time::from_ns(1_000));
        for i in 1..50u64 {
            let _ = ch.return_read_data_checked(0, Time::from_ns(1_000 + i * 100_000), false);
        }
        let c = ch.fault_counters().unwrap();
        assert_eq!(c.probes, 1, "no probes after the flap budget is spent");
        assert_eq!(c.failbacks, 1);
        assert_eq!(ch.read_slot, Dur::from_ns(12));
    }

    #[test]
    fn fault_recovery_is_deterministic_per_seed() {
        let run = || {
            let mut ch = faulty_channel(0.01, 4);
            let mut dones = Vec::new();
            for i in 0..200u64 {
                dones.push(ch.send_command_checked(Time::from_ns(i * 40)).slot.done);
                dones.push(
                    ch.return_read_data_checked(0, Time::from_ns(i * 40 + 10), false)
                        .slot
                        .done,
                );
            }
            (dones, ch.fault_counters().copied().unwrap())
        };
        let (a, ca) = run();
        let (b, cb) = run();
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        assert!(ca.any(), "1% frame corruption over 400 transfers must hit");
    }
}
