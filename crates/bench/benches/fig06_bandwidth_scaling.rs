//! Figure 6: bandwidth impact on performance — sweeping the channel
//! data rate (533/667/800 MT/s) and the number of logical channels
//! (1/2/4) for both DDR2 and FB-DIMM.
//!
//! Expected shape (paper §5.1): performance rises with both knobs;
//! multi-core workloads gain far more from extra channels (paper: +75%
//! from 1→2 channels on 8 cores vs +8.8% on 1 core).

use fbd_bench::*;
use fbd_types::time::DataRate;

fn main() {
    let exp = fbd_bench::experiment();
    banner(
        "Figure 6",
        "performance vs data rate and channel count",
        &exp,
    );

    let refs = references(Variant::Ddr2, &exp);
    let rates = [
        ("533MT/s", DataRate::MTS533),
        ("667MT/s", DataRate::MTS667),
        ("800MT/s", DataRate::MTS800),
    ];
    let channel_counts = [1u32, 2, 4];

    let grouped = run_grouped(
        |cores| {
            let mut configs = Vec::new();
            for variant in [Variant::Ddr2, Variant::Fbd] {
                for (rate_label, rate) in rates {
                    for ch in channel_counts {
                        let cfg = with_channels_and_rate(system(variant, cores), ch, rate);
                        configs.push((format!("{}/{}/{}ch", variant.label(), rate_label, ch), cfg));
                    }
                }
            }
            configs
        },
        &exp,
    );
    for (group, workloads, results) in grouped {
        let mut rows = vec![vec![
            group.to_string(),
            "1ch".to_string(),
            "2ch".to_string(),
            "4ch".to_string(),
        ]];
        for variant in [Variant::Ddr2, Variant::Fbd] {
            for (rate_label, _) in rates {
                let mut cells = vec![format!("{} {}", variant.label(), rate_label)];
                for ch in channel_counts {
                    let label = format!("{}/{}/{}ch", variant.label(), rate_label, ch);
                    let speedups: Vec<f64> = workloads
                        .iter()
                        .map(|w| {
                            let r = &results
                                .iter()
                                .find(|((c, n), _)| *c == label && n == w.name())
                                .expect("run")
                                .1;
                            speedup(w, r, &refs)
                        })
                        .collect();
                    cells.push(f3(mean(&speedups)));
                }
                rows.push(cells);
            }
        }
        emit_table(&format!("fig06_bandwidth_scaling_{group}"), &rows);
        println!();
    }
    println!("paper: FBD 533→667 gains 12.7% (1-core) / 20.5% (4-core); 1→2 channels gains 8.8% (1-core) / 75.1% (8-core)");
}
