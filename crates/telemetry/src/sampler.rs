//! Epoch sampler: periodic snapshots of the metric registry.
//!
//! Every `interval` of simulated time the driver calls
//! [`EpochSampler::sample`], which appends one row of readings for every
//! registered metric. Metrics may be registered after sampling has
//! started; earlier rows are implicitly zero for late-registered
//! columns, which works because [`MetricId`](crate::MetricId)s are
//! dense and append-only.
//! At the end of a run, [`EpochSampler::finish`] flushes one final row
//! for the partial epoch so no tail activity is lost.

use fbd_types::time::{Dur, Time};

use crate::json::Json;
use crate::registry::MetricRegistry;

/// One snapshot row: the sample instant plus a reading per metric id.
#[derive(Clone, Debug)]
pub struct SampleRow {
    /// When the snapshot was taken.
    pub at: Time,
    /// Readings indexed by [`MetricId`](crate::MetricId); shorter than
    /// the final metric
    /// count when metrics registered after this row was taken.
    pub values: Vec<f64>,
}

/// Time-series collector over a [`MetricRegistry`].
#[derive(Clone, Debug)]
pub struct EpochSampler {
    interval: Dur,
    next_due: Time,
    last_sample: Option<Time>,
    rows: Vec<SampleRow>,
}

impl EpochSampler {
    /// Creates a sampler firing every `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero — a zero epoch would make the
    /// sampler due at every instant and the series meaningless.
    pub fn new(interval: Dur) -> EpochSampler {
        assert!(interval > Dur::ZERO, "sample interval must be non-zero");
        EpochSampler {
            interval,
            next_due: Time::ZERO + interval,
            last_sample: None,
            rows: Vec::new(),
        }
    }

    /// The configured epoch length.
    pub fn interval(&self) -> Dur {
        self.interval
    }

    /// The next instant at which [`sample`](Self::sample) should run.
    pub fn next_due(&self) -> Time {
        self.next_due
    }

    /// Takes one snapshot at `now` and schedules the next epoch.
    pub fn sample(&mut self, now: Time, registry: &MetricRegistry) {
        self.push_row(now, registry);
        while self.next_due <= now {
            self.next_due += self.interval;
        }
    }

    /// Flushes the final partial epoch: if simulated time advanced past
    /// the last snapshot, one more row is taken at `end` so the series
    /// always covers the whole run. When the last periodic sample landed
    /// exactly at `end`, that row is re-taken instead of duplicated, so
    /// metrics registered or updated between the last sample and the end
    /// of the run (end-of-run `energy.*` and residency gauges) still
    /// appear in the series. Harmless to call twice.
    pub fn finish(&mut self, end: Time, registry: &MetricRegistry) {
        if self.last_sample == Some(end) {
            self.rows.pop();
            self.push_row(end, registry);
        } else if self.last_sample.is_some() || end > Time::ZERO {
            self.push_row(end, registry);
        }
    }

    fn push_row(&mut self, at: Time, registry: &MetricRegistry) {
        let values = (0..registry.len())
            .map(|i| {
                registry
                    .value(crate::registry::metric_id_from_index(i))
                    .as_f64()
            })
            .collect();
        self.rows.push(SampleRow { at, values });
        self.last_sample = Some(at);
    }

    /// All rows collected so far, oldest first.
    pub fn rows(&self) -> &[SampleRow] {
        &self.rows
    }

    /// Renders the series as CSV: a `time_ns` column plus one column
    /// per metric path. Rows taken before a metric registered report 0.
    pub fn to_csv(&self, registry: &MetricRegistry) -> String {
        let mut out = String::from("time_ns");
        for (path, _) in registry.iter() {
            out.push(',');
            out.push_str(&csv_field(path));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{}", row.at.as_ns_f64()));
            for i in 0..registry.len() {
                let v = row.values.get(i).copied().unwrap_or(0.0);
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the series as a JSON object with `interval_ns`,
    /// `columns` (metric paths) and `rows` (`[time_ns, v0, v1, ...]`).
    pub fn to_json(&self, registry: &MetricRegistry) -> Json {
        let columns = Json::Arr(registry.iter().map(|(path, _)| Json::from(path)).collect());
        let rows = Json::Arr(
            self.rows
                .iter()
                .map(|row| {
                    let mut cells = Vec::with_capacity(registry.len() + 1);
                    cells.push(Json::Num(row.at.as_ns_f64()));
                    for i in 0..registry.len() {
                        cells.push(Json::Num(row.values.get(i).copied().unwrap_or(0.0)));
                    }
                    Json::Arr(cells)
                })
                .collect(),
        );
        Json::Obj(vec![
            ("interval_ns".into(), Json::Num(self.interval.as_ns_f64())),
            ("columns".into(), columns),
            ("rows".into(), rows),
        ])
    }
}

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_interval_rejected() {
        let _ = EpochSampler::new(Dur::ZERO);
    }

    #[test]
    fn samples_advance_next_due_past_now() {
        let mut reg = MetricRegistry::new();
        let c = reg.counter("c");
        let mut s = EpochSampler::new(Dur::from_ns(100));
        assert_eq!(s.next_due(), Time::from_ns(100));

        reg.add(c, 1);
        s.sample(Time::from_ns(100), &reg);
        assert_eq!(s.next_due(), Time::from_ns(200));

        // A late sample (driver slipped two epochs) still lands the next
        // due time strictly in the future.
        reg.add(c, 4);
        s.sample(Time::from_ns(350), &reg);
        assert_eq!(s.next_due(), Time::from_ns(400));

        assert_eq!(s.rows().len(), 2);
        assert_eq!(s.rows()[0].values, vec![1.0]);
        assert_eq!(s.rows()[1].values, vec![5.0]);
    }

    #[test]
    fn finish_flushes_partial_epoch() {
        let mut reg = MetricRegistry::new();
        let c = reg.counter("c");
        let mut s = EpochSampler::new(Dur::from_ns(100));

        reg.add(c, 2);
        s.sample(Time::from_ns(100), &reg);
        reg.add(c, 1);
        // Run ends mid-epoch at 130 ns: the tail must not be dropped.
        s.finish(Time::from_ns(130), &reg);
        assert_eq!(s.rows().len(), 2);
        assert_eq!(s.rows()[1].at, Time::from_ns(130));
        assert_eq!(s.rows()[1].values, vec![3.0]);

        // Calling finish again at the same instant adds nothing.
        s.finish(Time::from_ns(130), &reg);
        assert_eq!(s.rows().len(), 2);
    }

    #[test]
    fn finish_refreshes_row_when_sample_landed_at_end() {
        // Regression: a run whose length is an exact multiple of the
        // epoch takes its last periodic sample at `end`; gauges set
        // after that (end-of-run energy totals) must still make the
        // final row instead of being silently dropped.
        let mut reg = MetricRegistry::new();
        let c = reg.counter("c");
        let mut s = EpochSampler::new(Dur::from_ns(100));

        reg.add(c, 2);
        s.sample(Time::from_ns(100), &reg);
        s.sample(Time::from_ns(200), &reg);

        let e = reg.gauge("energy.total_nj");
        reg.set(e, 42.0);
        s.finish(Time::from_ns(200), &reg);

        assert_eq!(s.rows().len(), 2, "row replaced, not duplicated");
        assert_eq!(s.rows()[1].at, Time::from_ns(200));
        assert_eq!(s.rows()[1].values, vec![2.0, 42.0]);

        // Still idempotent.
        s.finish(Time::from_ns(200), &reg);
        assert_eq!(s.rows().len(), 2);
    }

    #[test]
    fn finish_on_empty_run_records_nothing_at_zero() {
        let reg = MetricRegistry::new();
        let mut s = EpochSampler::new(Dur::from_ns(100));
        s.finish(Time::ZERO, &reg);
        assert!(s.rows().is_empty());
    }

    #[test]
    fn late_registered_metrics_pad_earlier_rows() {
        let mut reg = MetricRegistry::new();
        let a = reg.counter("a");
        let mut s = EpochSampler::new(Dur::from_ns(10));
        reg.add(a, 1);
        s.sample(Time::from_ns(10), &reg);

        let b = reg.gauge("b");
        reg.set(b, 9.0);
        s.sample(Time::from_ns(20), &reg);

        let csv = s.to_csv(&reg);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_ns,a,b");
        assert_eq!(lines[1], "10,1,0");
        assert_eq!(lines[2], "20,1,9");

        let json = s.to_json(&reg);
        let rows = json.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[0].as_array().unwrap().len(), 3);
        assert_eq!(rows[0].as_array().unwrap()[2].as_f64(), Some(0.0));
    }
}
