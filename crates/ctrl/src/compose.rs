//! Name-keyed registries for the controller's pluggable policies.
//!
//! Each registry publishes `&'static` spec objects keyed by a stable
//! name, so a whole memory system can be composed from strings
//! (`--scheduler fcfs`) without the core knowing the concrete types.
//! Adding a policy means one new file implementing the spec trait plus
//! one `register` call here — no enum edits, no controller edits.

use std::sync::OnceLock;

use fbd_types::Registry;

use crate::fcfs::FcfsSpec;
use crate::mapping::{InterleavedSpec, MapperSpec};
use crate::refresh::{NoRefreshSpec, RefreshSpec, StaggeredSpec};
use crate::sched::{HitFirstSpec, SchedulerSpec};
use crate::scrub::{NoScrubSpec, PatrolSpec, ScrubSpec};

/// All registered scheduling policies, in registration order
/// (`hit-first` first — it is the paper default).
pub fn schedulers() -> &'static Registry<dyn SchedulerSpec> {
    static REG: OnceLock<Registry<dyn SchedulerSpec>> = OnceLock::new();
    REG.get_or_init(|| {
        let mut r: Registry<dyn SchedulerSpec> = Registry::new("scheduler");
        r.register("hit-first", &HitFirstSpec);
        r.register("fcfs", &FcfsSpec);
        r
    })
}

/// All registered address mappers (`interleaved` is the paper default
/// and currently the only entry).
pub fn mappers() -> &'static Registry<dyn MapperSpec> {
    static REG: OnceLock<Registry<dyn MapperSpec>> = OnceLock::new();
    REG.get_or_init(|| {
        let mut r: Registry<dyn MapperSpec> = Registry::new("mapper");
        r.register("interleaved", &InterleavedSpec);
        r
    })
}

/// All registered refresh managers (`staggered` is the paper default).
pub fn refresh_managers() -> &'static Registry<dyn RefreshSpec> {
    static REG: OnceLock<Registry<dyn RefreshSpec>> = OnceLock::new();
    REG.get_or_init(|| {
        let mut r: Registry<dyn RefreshSpec> = Registry::new("refresh manager");
        r.register("staggered", &StaggeredSpec);
        r.register("none", &NoRefreshSpec);
        r
    })
}

/// All registered background-scrub policies (`none` is the default —
/// scrubbing is strictly opt-in).
pub fn scrub_policies() -> &'static Registry<dyn ScrubSpec> {
    static REG: OnceLock<Registry<dyn ScrubSpec>> = OnceLock::new();
    REG.get_or_init(|| {
        let mut r: Registry<dyn ScrubSpec> = Registry::new("scrub policy");
        r.register("none", &NoScrubSpec);
        r.register("patrol", &PatrolSpec);
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_types::config::MemoryConfig;

    #[test]
    fn default_policies_are_registered_first() {
        assert_eq!(schedulers().names().next(), Some("hit-first"));
        assert_eq!(mappers().names().next(), Some("interleaved"));
        assert_eq!(refresh_managers().names().next(), Some("staggered"));
        assert_eq!(scrub_policies().names().next(), Some("none"));
    }

    #[test]
    fn every_entry_builds_for_the_paper_default_config() {
        let cfg = MemoryConfig::fbdimm_with_prefetch();
        for (_, spec) in schedulers().iter() {
            let _ = spec.build(&cfg);
        }
        for (_, spec) in mappers().iter() {
            let m = spec.build(&cfg);
            assert!(m.capacity_lines() > 0);
        }
        for (_, spec) in refresh_managers().iter() {
            let _ = spec.build(&cfg);
        }
        for (_, spec) in scrub_policies().iter() {
            let _ = spec.build(&cfg);
        }
    }

    #[test]
    fn scrub_registry_lists_patrol() {
        let spec = scrub_policies().get("patrol").expect("registered");
        assert_eq!(spec.name(), "patrol");
        assert!(scrub_policies().get("demand").is_none());
        assert_eq!(scrub_policies().available(), "none|patrol");
    }

    #[test]
    fn the_extension_scheduler_is_reachable_by_name_only() {
        let spec = schedulers().get("fcfs").expect("fcfs must be registered");
        assert_eq!(spec.name(), "fcfs");
        assert!(schedulers().get("round-robin").is_none());
        assert_eq!(schedulers().available(), "hit-first|fcfs");
    }
}
