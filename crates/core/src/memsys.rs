//! The complete memory subsystem: controller policy wired to a datapath.
//!
//! One [`MemorySystem`] owns the transaction queue, scheduler, address
//! mapper and (when prefetching is on) the prefetch information table,
//! plus one datapath per logical channel:
//!
//! * **FB-DIMM**: southbound/northbound links ([`fbd_link::FbdChannel`])
//!   in front of per-DIMM AMB engines ([`fbd_amb::AmbDimm`]);
//! * **DDR2** baseline: a shared command bus and a shared data bus in
//!   front of per-DIMM bank arrays.
//!
//! The subsystem is driven by *decision events*: at each decision
//! instant for a channel the scheduler picks the best ready transaction
//! (hit-first, read-priority) and issues it, reserving link/bus/bank
//! time and computing the completion analytically. One decision issues
//! at most one transaction, and the next decision follows one command
//! slot later, so scheduling stays fine-grained.

use std::collections::{HashSet, VecDeque};

use fbd_amb::{AmbDimm, GroupFetchOutcome, ReadOutcome, WriteOutcome};
use fbd_ctrl::{
    mappers, refresh_managers, schedulers, scrub_policies, AddressMapper, FillOutcome, MappedAddr,
    PrefetchTable, QueueEntry, RefreshManager, RefreshOp, SchedClass, SchedulerPolicy, ScrubPolicy,
    TransactionQueue,
};
use fbd_dram::{AccessPlan, BankArray, ColKind, ColumnOp, DataBus};
use fbd_faults::{FaultCounters, FaultReport, SilentErrorReport};
use fbd_link::{Ddr2CommandBus, FbdChannel, LinkSlot};
use fbd_power::{EnergyModel, EnergyReport, PowerModeTracker, RankActivity};
use fbd_telemetry::host::{Counter, HostHandle, Phase};
use fbd_telemetry::{
    tid_bank, tid_dimm, tid_power, Json, MetricId, StageProfile, Telemetry, TelemetryConfig,
    TID_NORTH, TID_SOUTH,
};
use fbd_types::config::{AmbPrefetchMode, MemoryConfig, MemoryTech, PagePolicy, ScrubPolicyKind};
use fbd_types::request::{
    AccessKind, CoreId, MemRequest, MemResponse, ReqClass, RequestId, ServiceKind, Stage,
    StageBreakdown,
};
use fbd_types::stats::MemStats;
use fbd_types::time::{DataRate, Dur, Time};
use fbd_types::{LineAddr, CACHE_LINE_BYTES};

use crate::compose::Composition;

/// Reads in flight per logical channel before the controller stops
/// issuing and waits for completions. Bounds how far reservations run
/// ahead of service, keeping hit-first reordering effective.
const MAX_INFLIGHT_PER_CHANNEL: u32 = 16;

/// Idle timeout of the power-mode residency model: a rank idle longer
/// than this is assumed to be dropped into precharge power-down by the
/// controller (CKE low); shorter gaps stay in precharge standby.
const POWERDOWN_AFTER: Dur = Dur::from_ns(30);

/// An issued transaction, as reported to the simulation engine.
#[derive(Clone, Copy, Debug)]
pub enum Issued {
    /// A read; `resp.completion` is when the critical line reaches the
    /// controller.
    Read {
        /// The completed response.
        resp: MemResponse,
    },
    /// A write; `done` is when its data finishes at the devices.
    Write {
        /// Completion instant (frees the in-flight slot).
        done: Time,
    },
}

/// Outcome of one scheduling decision.
///
/// A decision usually issues at most one transaction; on a shared-bus
/// (DDR2) channel a triggered write drain commits the whole batch in one
/// decision so the following reads' activates overlap the write burst.
#[derive(Clone, Debug, Default)]
pub struct DecideResult {
    /// The transactions issued (empty if none was ready).
    pub issued: Vec<Issued>,
    /// When this channel should next run a decision (None: wait for a
    /// new arrival or a completion).
    pub next_decision: Option<Time>,
}

enum ChannelPath {
    Fbd {
        link: FbdChannel,
        dimms: Vec<AmbDimm>,
    },
    Ddr2 {
        cmd: Ddr2CommandBus,
        bus: DataBus,
        dimms: Vec<BankArray>,
    },
}

struct Channel {
    path: ChannelPath,
    inflight: u32,
}

/// Always-on per-channel traffic counters. These stay outside the
/// optional telemetry registry so per-channel bandwidth is available to
/// exporters even when telemetry was never enabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelCounters {
    /// Read transactions issued on this channel (all read kinds).
    pub reads: u64,
    /// Write transactions issued on this channel.
    pub writes: u64,
    /// Data moved over this channel, in bytes.
    pub bytes: u64,
    /// Reads served from an AMB prefetch cache on this channel.
    pub amb_hits: u64,
}

/// Registry handles for one DIMM's metrics.
#[derive(Clone, Copy)]
struct DimmIds {
    acts: MetricId,
    reads: MetricId,
    writes: MetricId,
    power_active_ns: MetricId,
    power_standby_ns: MetricId,
    power_powerdown_ns: MetricId,
}

/// Registry handles for one channel's metrics.
struct ChanIds {
    reads: MetricId,
    writes: MetricId,
    bytes: MetricId,
    amb_hits: MetricId,
    queue_depth: MetricId,
    inflight: MetricId,
    dimms: Vec<DimmIds>,
}

/// Telemetry state attached to a [`MemorySystem`] when enabled: the
/// registry/sampler/tracer plus the pre-registered metric handles.
/// Boxed behind an `Option` so the telemetry-off hot path pays one
/// pointer test. (Power-mode residency is tracked always-on by the
/// [`MemorySystem`] itself — the energy report needs it even when
/// telemetry never ran.)
struct MemTel {
    tel: Telemetry,
    chans: Vec<ChanIds>,
    read_latency: MetricId,
    pf_fills: MetricId,
    pf_evictions: MetricId,
    pf_hits: MetricId,
}

impl MemTel {
    /// A southbound frame slot (command or write data).
    fn south_frame(&mut self, name: &'static str, ch: u32, slot: LinkSlot) {
        if let Some(tr) = self.tel.tracer.as_mut() {
            tr.complete(name, "link", ch, TID_SOUTH, slot.start, slot.dur, vec![]);
        }
    }

    /// A northbound data-return slot.
    fn north_frame(&mut self, ch: u32, slot: LinkSlot) {
        if let Some(tr) = self.tel.tracer.as_mut() {
            tr.complete("data", "link", ch, TID_NORTH, slot.start, slot.dur, vec![]);
        }
    }

    /// Corrupted link slots consumed by replay attempts (or a dropped
    /// transfer), shown on the link track under fault injection.
    fn retry_frames(&mut self, ch: u32, tid: u32, failed: &[LinkSlot]) {
        if let Some(tr) = self.tel.tracer.as_mut() {
            for f in failed {
                tr.complete("retry", "link", ch, tid, f.start, f.dur, vec![]);
            }
        }
    }

    /// Channel-level read accounting (any read kind).
    fn count_read(&mut self, ch: u32) {
        let ids = &self.chans[ch as usize];
        let (reads, bytes) = (ids.reads, ids.bytes);
        self.tel.registry.add(reads, 1);
        self.tel.registry.add(bytes, CACHE_LINE_BYTES);
    }

    /// Channel-level write accounting.
    fn count_write(&mut self, ch: u32) {
        let ids = &self.chans[ch as usize];
        let (writes, bytes) = (ids.writes, ids.bytes);
        self.tel.registry.add(writes, 1);
        self.tel.registry.add(bytes, CACHE_LINE_BYTES);
    }

    /// A read served from the AMB prefetch cache (no DRAM access).
    fn amb_hit(&mut self, ch: u32, dimm: u32, at: Time) {
        let id = self.chans[ch as usize].amb_hits;
        self.tel.registry.add(id, 1);
        self.tel.registry.add(self.pf_hits, 1);
        if let Some(tr) = self.tel.tracer.as_mut() {
            tr.instant("amb_hit", "amb", ch, tid_dimm(dimm as usize), at, vec![]);
        }
    }

    /// A plain single-line DRAM read on an FBD channel; command spans
    /// land on the serving bank's track.
    fn dram_read(&mut self, ch: u32, dimm: u32, bank: u32, out: &ReadOutcome) {
        let ids = self.chans[ch as usize].dimms[dimm as usize];
        if out.act_at.is_some() {
            self.tel.registry.add(ids.acts, 1);
        }
        self.tel.registry.add(ids.reads, 1);
        if let Some(tr) = self.tel.tracer.as_mut() {
            let tid = tid_bank(dimm as usize, bank as usize);
            if let Some(act) = out.act_at {
                tr.complete("ACT", "dram", ch, tid, act, out.cmd_at - act, vec![]);
            }
            tr.complete(
                "RD",
                "dram",
                ch,
                tid,
                out.cmd_at,
                out.data_end - out.cmd_at,
                vec![],
            );
        }
    }

    /// A K-line group fetch (one ACT, K pipelined column reads);
    /// command spans land on the serving bank's track.
    fn group_fetch(
        &mut self,
        ch: u32,
        dimm: u32,
        bank: u32,
        out: &GroupFetchOutcome,
        fill: &FillOutcome,
    ) {
        let ids = self.chans[ch as usize].dimms[dimm as usize];
        if out.act_at.is_some() {
            self.tel.registry.add(ids.acts, 1);
        }
        self.tel
            .registry
            .add(ids.reads, u64::from(out.lines_fetched));
        self.tel.registry.add(self.pf_fills, fill.inserted);
        self.tel.registry.add(self.pf_evictions, fill.evicted);
        if let Some(tr) = self.tel.tracer.as_mut() {
            let tid = tid_bank(dimm as usize, bank as usize);
            if let Some(act) = out.act_at {
                tr.complete("ACT", "dram", ch, tid, act, out.first_cmd_at - act, vec![]);
            }
            tr.complete(
                format!("RDx{}", out.lines_fetched),
                "dram",
                ch,
                tid,
                out.first_cmd_at,
                out.fill_done - out.first_cmd_at,
                vec![("prefetched", Json::from(fill.inserted))],
            );
        }
    }

    /// A line write at the DRAM devices of an FBD DIMM; command spans
    /// land on the serving bank's track.
    fn dram_write(&mut self, ch: u32, dimm: u32, bank: u32, out: &WriteOutcome) {
        let ids = self.chans[ch as usize].dimms[dimm as usize];
        if out.act_at.is_some() {
            self.tel.registry.add(ids.acts, 1);
        }
        self.tel.registry.add(ids.writes, 1);
        if let Some(tr) = self.tel.tracer.as_mut() {
            let tid = tid_bank(dimm as usize, bank as usize);
            if let Some(act) = out.act_at {
                tr.complete("ACT", "dram", ch, tid, act, out.cmd_at - act, vec![]);
            }
            tr.complete(
                "WR",
                "dram",
                ch,
                tid,
                out.cmd_at,
                out.data_end - out.cmd_at,
                vec![],
            );
        }
    }

    /// A committed access plan on a DDR2 channel; emits one span per
    /// command (PRE/ACT, then the column command through its burst) on
    /// the serving bank's track.
    fn ddr2_access(&mut self, ch: u32, dimm: u32, plan: &AccessPlan) {
        let cmds: Vec<(&'static str, Time)> = plan.commands().collect();
        let ids = self.chans[ch as usize].dimms[dimm as usize];
        if cmds.iter().any(|(n, _)| *n == "ACT") {
            self.tel.registry.add(ids.acts, 1);
        }
        let (col_name, _) = *cmds.last().expect("a plan always has a column command");
        if col_name.starts_with("RD") {
            self.tel.registry.add(ids.reads, 1);
        } else {
            self.tel.registry.add(ids.writes, 1);
        }
        if let Some(tr) = self.tel.tracer.as_mut() {
            let tid = tid_bank(dimm as usize, plan.bank);
            for (i, (name, at)) in cmds.iter().enumerate() {
                let end = cmds.get(i + 1).map_or(plan.data_end, |(_, t)| *t);
                tr.complete(*name, "dram", ch, tid, *at, end - *at, vec![]);
            }
        }
    }
}

/// Controller-originated requests (scrub sweeps, prefetch re-issues)
/// take ids in the top half of the id space so they can never collide
/// with core-originated ids.
const SYNTH_ID_BASE: u64 = 1 << 63;

/// Closed-loop recovery state: the poison set fed by CRC escapes, the
/// background scrub policy, and the dropped-prefetch re-issue queues.
///
/// Lives behind an `Option` that stays `None` unless fault injection
/// with a finite CRC, scrubbing, or re-issue is configured, so the
/// default hot path pays one pointer test and every export stays
/// byte-identical to a build without this subsystem.
#[derive(Debug)]
struct Reliability {
    /// Background scrub policy (the registry's `none` entry when only
    /// poison tracking or re-issue is active).
    scrub: Box<dyn ScrubPolicy>,
    /// Whether `scrub` can ever return work — skips the observe/poll
    /// calls entirely for the `none` policy.
    scrub_active: bool,
    /// Lines whose last transfer escaped the CRC: silently corrupted
    /// in memory until a clean overwrite or a scrub repairs them.
    poisoned: HashSet<LineAddr>,
    /// Dropped prefetch returns remembered per channel, re-issued at
    /// idle decision slots (each queue bounded by `reissue_budget`).
    pending: Vec<VecDeque<LineAddr>>,
    reissue_budget: usize,
    /// Controller-side recovery counters (scrub/re-issue activity),
    /// merged with the link counters into the run's fault report.
    counters: FaultCounters,
    /// Demand-consumption and scrub-repair outcomes. `poisoned_lines`
    /// is derived from the live set when the report is taken.
    silent: SilentErrorReport,
    /// Monotone id/sequence source for synthesized queue entries.
    synth: u64,
}

impl Reliability {
    /// The controller-side half of the run's fault report: scrub and
    /// re-issue counters plus the silent-corruption outcome.
    fn report(&self) -> FaultReport {
        let mut silent = self.silent;
        silent.poisoned_lines = self.poisoned.len() as u64;
        FaultReport {
            counters: self.counters,
            degraded: Dur::ZERO,
            silent,
        }
    }
}

/// The full memory subsystem behind the processor complex.
pub struct MemorySystem {
    cfg: MemoryConfig,
    mapper: Box<dyn AddressMapper>,
    queue: TransactionQueue,
    spill: VecDeque<(MemRequest, MappedAddr)>,
    /// One scheduler per logical channel (drain-mode state is
    /// per-channel).
    scheds: Vec<Box<dyn SchedulerPolicy>>,
    /// Decides when each DIMM refreshes; `refresh_active` caches its
    /// `is_active` so the per-decision fast path stays branch-cheap.
    refresh_mgr: Box<dyn RefreshManager>,
    refresh_active: bool,
    /// Scratch buffer reused across [`Self::run_refreshes`] calls.
    refresh_buf: Vec<RefreshOp>,
    /// Scratch buffer of schedulable candidates reused across
    /// [`Self::pick_for`] calls (steady state never allocates).
    cand_buf: Vec<QueueEntry>,
    table: Option<PrefetchTable>,
    /// Closed-loop recovery state; `None` unless a CRC-escape model,
    /// scrubbing, or prefetch re-issue is configured.
    reliability: Option<Box<Reliability>>,
    channels: Vec<Channel>,
    stats: MemStats,
    chan_counts: Vec<ChannelCounters>,
    tel: Option<Box<MemTel>>,
    /// Always-on per-rank power-mode trackers, indexed
    /// `(channel * dimms_per_channel + dimm) * ranks_per_dimm + rank`.
    /// They feed [`Self::energy_report`] and, when telemetry runs, the
    /// residency gauges and power trace tracks.
    power: Vec<PowerModeTracker>,
    /// Always-on stage × request-class latency attribution over every
    /// completed read. Cheap (fixed-size histograms, no allocation per
    /// read), so it needs no telemetry flag; `fbdsim profile` and the
    /// stats exporter read it back after the run.
    profile: StageProfile,
    /// DIMM-bus time of one line on a (ganged) DIMM.
    burst: Dur,
    clock: Dur,
    /// Host-side profiler handle (no-op unless a profiler is attached).
    host: HostHandle,
}

impl std::fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySystem")
            .field("tech", &self.cfg.tech)
            .field("channels", &self.channels.len())
            .field("queued", &self.queue.len())
            .field("spilled", &self.spill.len())
            .finish_non_exhaustive()
    }
}

impl MemorySystem {
    /// Builds the subsystem for a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: &MemoryConfig) -> MemorySystem {
        cfg.validate().expect("invalid memory configuration");
        MemorySystem::compose(cfg, &Composition::from_config(cfg))
            .expect("default composition resolves")
    }

    /// Builds the subsystem from an explicit [`Composition`]: each
    /// named part is resolved against its registry and composed around
    /// `cfg`. This is how string-selected policies (`--scheduler fcfs`)
    /// reach the controller without the core naming any concrete type.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unresolved part (with the available
    /// registry names) or the configuration error.
    pub fn compose(cfg: &MemoryConfig, comp: &Composition) -> Result<MemorySystem, String> {
        cfg.validate().map_err(|e| e.to_string())?;
        let sched_spec = schedulers().get(&comp.scheduler).ok_or_else(|| {
            format!(
                "unknown scheduler `{}` (available: {})",
                comp.scheduler,
                schedulers().available()
            )
        })?;
        let mapper_spec = mappers().get(&comp.mapper).ok_or_else(|| {
            format!(
                "unknown mapper `{}` (available: {})",
                comp.mapper,
                mappers().available()
            )
        })?;
        let refresh_spec = refresh_managers().get(&comp.refresh).ok_or_else(|| {
            format!(
                "unknown refresh manager `{}` (available: {})",
                comp.refresh,
                refresh_managers().available()
            )
        })?;
        let clock = cfg.data_rate.clock_period();
        let lines_per_clock_bytes = 16 * u64::from(cfg.phys_per_logical);
        let burst_clocks = (CACHE_LINE_BYTES).div_ceil(lines_per_clock_bytes);
        let burst = clock * burst_clocks;
        let close_page = cfg.page_policy == PagePolicy::ClosePage;
        let channels: Vec<Channel> = (0..cfg.logical_channels)
            .map(|ch| {
                let path = match cfg.tech {
                    MemoryTech::FbDimm { .. } => ChannelPath::Fbd {
                        link: FbdChannel::for_channel(cfg, ch),
                        dimms: (0..cfg.dimms_per_channel)
                            .map(|_| {
                                AmbDimm::with_ranks(
                                    cfg.ranks_per_dimm as usize,
                                    cfg.banks_per_dimm as usize,
                                    cfg.timings,
                                    clock,
                                    burst,
                                    close_page,
                                )
                            })
                            .collect(),
                    },
                    MemoryTech::Ddr2 => ChannelPath::Ddr2 {
                        cmd: Ddr2CommandBus::new(cfg),
                        bus: DataBus::new(clock),
                        dimms: (0..cfg.dimms_per_channel * cfg.ranks_per_dimm)
                            .map(|_| {
                                BankArray::new(cfg.banks_per_dimm as usize, cfg.timings, clock)
                            })
                            .collect(),
                    },
                };
                Channel { path, inflight: 0 }
            })
            .collect();
        let refresh_mgr = refresh_spec.build(cfg);
        let refresh_active = refresh_mgr.is_active();
        let reliability = if cfg.faults.recovery_active() {
            let scrub_spec = scrub_policies()
                .get(cfg.faults.scrub.name())
                .ok_or_else(|| {
                    format!(
                        "unknown scrub policy `{}` (available: {})",
                        cfg.faults.scrub.name(),
                        scrub_policies().available()
                    )
                })?;
            Some(Box::new(Reliability {
                scrub: scrub_spec.build(cfg),
                scrub_active: cfg.faults.scrub != ScrubPolicyKind::None,
                poisoned: HashSet::new(),
                pending: vec![VecDeque::new(); cfg.logical_channels as usize],
                reissue_budget: cfg.faults.reissue_budget as usize,
                counters: FaultCounters::default(),
                silent: SilentErrorReport::default(),
                synth: 0,
            }))
        } else {
            None
        };
        Ok(MemorySystem {
            mapper: mapper_spec.build(cfg),
            queue: TransactionQueue::new(cfg.queue_capacity as usize),
            spill: VecDeque::new(),
            scheds: (0..cfg.logical_channels)
                .map(|_| sched_spec.build(cfg))
                .collect(),
            refresh_mgr,
            refresh_active,
            refresh_buf: Vec::new(),
            cand_buf: Vec::new(),
            table: cfg.amb.is_enabled().then(|| PrefetchTable::new(cfg)),
            reliability,
            channels,
            stats: MemStats::default(),
            chan_counts: vec![ChannelCounters::default(); cfg.logical_channels as usize],
            tel: None,
            // Built with `repeat_with`, not `vec![x; n]`: cloning a
            // tracker drops its pre-reserved span capacity (Vec::clone
            // allocates exactly `len`), which would put `note_busy`
            // back on the allocator in the hot loop.
            power: std::iter::repeat_with(|| PowerModeTracker::new(POWERDOWN_AFTER))
                .take((cfg.logical_channels * cfg.dimms_per_channel * cfg.ranks_per_dimm) as usize)
                .collect(),
            profile: StageProfile::new(),
            burst,
            clock,
            cfg: *cfg,
            host: HostHandle::off(),
        })
    }

    /// Attaches the host-side profiler handle (shared with the system's
    /// event loop); the scheduler and datapath mark their phases into
    /// it. See [`crate::System::set_host_profiler`].
    pub fn set_host_profiler(&mut self, host: HostHandle) {
        self.host = host;
    }

    /// Index of the power tracker for `(ch, dimm, rank)`.
    fn pidx(&self, ch: u32, dimm: u32, rank: u32) -> usize {
        ((ch * self.cfg.dimms_per_channel + dimm) * self.cfg.ranks_per_dimm + rank) as usize
    }

    /// Turns on telemetry collection for the rest of the run: registers
    /// the per-channel / per-DIMM metrics and names the trace tracks
    /// (one power track per rank).
    ///
    /// # Panics
    ///
    /// Panics if `config.sample_interval` is `Some(Dur::ZERO)`.
    pub fn enable_telemetry(&mut self, config: &TelemetryConfig) {
        let mut tel = Telemetry::new(config);
        let ndimm = self.cfg.dimms_per_channel;
        let ranks = self.cfg.ranks_per_dimm;
        let nbank = self.cfg.banks_per_dimm;
        let chans: Vec<ChanIds> = (0..self.cfg.logical_channels)
            .map(|c| {
                if let Some(tr) = tel.tracer.as_mut() {
                    tr.name_process(c, &format!("chan{c}"));
                    tr.name_track(c, TID_SOUTH, "southbound");
                    tr.name_track(c, TID_NORTH, "northbound");
                    for d in 0..ndimm {
                        tr.name_track(c, tid_dimm(d as usize), &format!("dimm{d} amb"));
                        for b in 0..nbank {
                            tr.name_track(
                                c,
                                tid_bank(d as usize, b as usize),
                                &format!("dimm{d} bank{b}"),
                            );
                        }
                        for r in 0..ranks {
                            let label = if ranks == 1 {
                                format!("dimm{d} power")
                            } else {
                                format!("dimm{d}.rank{r} power")
                            };
                            tr.name_track(c, tid_power((d * ranks + r) as usize), &label);
                        }
                    }
                }
                ChanIds {
                    reads: tel.registry.counter(&format!("chan{c}.reads")),
                    writes: tel.registry.counter(&format!("chan{c}.writes")),
                    bytes: tel.registry.counter(&format!("chan{c}.bytes")),
                    amb_hits: tel.registry.counter(&format!("chan{c}.amb_hits")),
                    queue_depth: tel.registry.gauge(&format!("chan{c}.queue_depth")),
                    inflight: tel.registry.gauge(&format!("chan{c}.inflight")),
                    dimms: (0..ndimm)
                        .map(|d| DimmIds {
                            acts: tel.registry.counter(&format!("chan{c}.dimm{d}.acts")),
                            reads: tel.registry.counter(&format!("chan{c}.dimm{d}.col_reads")),
                            writes: tel.registry.counter(&format!("chan{c}.dimm{d}.col_writes")),
                            power_active_ns: tel
                                .registry
                                .gauge(&format!("chan{c}.dimm{d}.power.active_ns")),
                            power_standby_ns: tel
                                .registry
                                .gauge(&format!("chan{c}.dimm{d}.power.standby_ns")),
                            power_powerdown_ns: tel
                                .registry
                                .gauge(&format!("chan{c}.dimm{d}.power.powerdown_ns")),
                        })
                        .collect(),
                }
            })
            .collect();
        let read_latency = tel.registry.latency("mem.read_latency");
        let pf_fills = tel.registry.counter("amb.prefetch.fills");
        let pf_evictions = tel.registry.counter("amb.prefetch.evictions");
        let pf_hits = tel.registry.counter("amb.prefetch.hits");
        self.tel = Some(Box::new(MemTel {
            tel,
            chans,
            read_latency,
            pf_fills,
            pf_evictions,
            pf_hits,
        }));
    }

    /// The telemetry state, when enabled.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.tel.as_ref().map(|t| &t.tel)
    }

    /// Mutable telemetry state, when enabled (e.g. to register extra
    /// metrics in the shared registry).
    pub fn telemetry_mut(&mut self) -> Option<&mut Telemetry> {
        self.tel.as_mut().map(|t| &mut t.tel)
    }

    /// Always-on per-channel traffic counters, indexed by channel.
    pub fn channel_counters(&self) -> &[ChannelCounters] {
        &self.chan_counts
    }

    /// The always-on stage × request-class latency-attribution profile
    /// over every read and posted write completed so far.
    pub fn latency_profile(&self) -> &StageProfile {
        &self.profile
    }

    /// The fault-injection summary for the run so far, evaluated at
    /// `end` (degraded-width residency accrues until then), merged over
    /// every channel, plus the controller's recovery overlay (scrub and
    /// re-issue counters, silent-corruption outcome). `None` when both
    /// fault injection and recovery are off — the stats schema stays
    /// byte-identical to a no-fault run. A scrub-only run at zero BER
    /// reports `Some` so its traffic is visible.
    pub fn fault_report(&self, end: Time) -> Option<FaultReport> {
        let mut out: Option<FaultReport> = None;
        for c in &self.channels {
            if let ChannelPath::Fbd { link, .. } = &c.path {
                if let Some(r) = link.fault_report(end) {
                    match out.as_mut() {
                        Some(acc) => acc.merge(&r),
                        None => out = Some(r),
                    }
                }
            }
        }
        if let Some(rel) = self.reliability.as_deref() {
            let overlay = rel.report();
            match out.as_mut() {
                Some(acc) => acc.merge(&overlay),
                None => out = Some(overlay),
            }
        }
        out
    }

    /// When the next telemetry epoch snapshot is due ([`Time::NEVER`]
    /// when telemetry or sampling is off).
    pub fn next_sample_due(&self) -> Time {
        self.tel
            .as_ref()
            .map_or(Time::NEVER, |t| t.tel.next_sample_due())
    }

    /// Takes an epoch snapshot: refreshes the queue-depth / in-flight
    /// gauges, emits counter trace events, then samples every metric.
    pub fn sample_telemetry(&mut self, now: Time) {
        let Some(t) = self.tel.as_deref_mut() else {
            return;
        };
        for ch in 0..self.cfg.logical_channels {
            let (qd, inf) = {
                let ids = &t.chans[ch as usize];
                (ids.queue_depth, ids.inflight)
            };
            let depth = self.queue.channel_depth(ch) as f64;
            let inflight = f64::from(self.channels[ch as usize].inflight);
            t.tel.registry.set(qd, depth);
            t.tel.registry.set(inf, inflight);
            if let Some(tr) = t.tel.tracer.as_mut() {
                tr.counter("queue_depth", "ctrl", ch, TID_SOUTH, now, depth);
                tr.counter("inflight", "ctrl", ch, TID_SOUTH, now, inflight);
            }
        }
        t.tel.sample(now);
    }

    /// Ends telemetry at `end` and takes it out of the subsystem:
    /// resolves power-mode residencies and the energy report into the
    /// registry (and tracer, when tracing), then flushes the final
    /// partial epoch.
    pub fn finish_telemetry(&mut self, end: Time) -> Option<Telemetry> {
        let mut mt = self.tel.take()?;
        let ranks = self.cfg.ranks_per_dimm;
        for ch in 0..self.cfg.logical_channels {
            for d in 0..self.cfg.dimms_per_channel {
                let ids = mt.chans[ch as usize].dimms[d as usize];
                let mut res = fbd_power::ModeResidency::default();
                for r in 0..ranks {
                    let tracker = &self.power[self.pidx(ch, d, r)];
                    let rr = tracker.residency(end);
                    res.active += rr.active;
                    res.standby += rr.standby;
                    res.powerdown += rr.powerdown;
                    if let Some(tr) = mt.tel.tracer.as_mut() {
                        for span in tracker.spans(end) {
                            tr.complete(
                                span.mode.label(),
                                "power",
                                ch,
                                tid_power((d * ranks + r) as usize),
                                span.start,
                                span.dur(),
                                vec![],
                            );
                        }
                    }
                }
                mt.tel
                    .registry
                    .set(ids.power_active_ns, res.active.as_ns_f64());
                mt.tel
                    .registry
                    .set(ids.power_standby_ns, res.standby.as_ns_f64());
                mt.tel
                    .registry
                    .set(ids.power_powerdown_ns, res.powerdown.as_ns_f64());
            }
        }
        let energy = self.energy_report(end);
        for (path, value) in [
            ("energy.activation_nj", energy.activation_nj),
            ("energy.burst_nj", energy.burst_nj),
            ("energy.refresh_nj", energy.refresh_nj),
            ("energy.background_nj", energy.background_nj),
            ("energy.amb_nj", energy.amb_nj),
            ("energy.total_nj", energy.total_nj()),
            ("energy.avg_power_w", energy.avg_power_w()),
        ] {
            let id = mt.tel.registry.gauge(path);
            mt.tel.registry.set(id, value);
        }
        // Error/recovery gauges exist only when fault injection ran, so
        // a zero-BER run exports a byte-identical registry.
        if let Some(fr) = self.fault_report(end) {
            for (path, value) in [
                ("errors.injected", fr.counters.injected as f64),
                ("errors.detected", fr.counters.detected as f64),
                ("errors.retried", fr.counters.retried as f64),
                ("errors.retry_exhausted", fr.counters.retry_exhausted as f64),
                ("errors.failovers", fr.counters.failovers as f64),
                (
                    "errors.dropped_prefetch",
                    fr.counters.dropped_prefetch as f64,
                ),
                ("errors.degraded_ns", fr.degraded.as_ns_f64()),
                ("errors.escaped", fr.counters.escaped as f64),
                ("errors.probes", fr.counters.probes as f64),
                ("errors.failbacks", fr.counters.failbacks as f64),
                ("errors.reissued", fr.counters.reissued as f64),
                ("errors.scrub_reads", fr.counters.scrub_reads as f64),
                ("errors.scrub_rewrites", fr.counters.scrub_rewrites as f64),
                (
                    "errors.silent.poisoned_lines",
                    fr.silent.poisoned_lines as f64,
                ),
                (
                    "errors.silent.demand_consumed",
                    fr.silent.demand_consumed as f64,
                ),
                (
                    "errors.silent.scrubbed_clean",
                    fr.silent.scrubbed_clean as f64,
                ),
            ] {
                let id = mt.tel.registry.gauge(path);
                mt.tel.registry.set(id, value);
            }
        }
        mt.tel.finish(end);
        Some(mt.tel)
    }

    /// Submits a request. Returns the instant it becomes schedulable
    /// (arrival plus the controller's fixed overhead) and its channel, so
    /// the engine can schedule a decision.
    pub fn submit(&mut self, req: MemRequest) -> (u32, Time) {
        let mapped = self.mapper.map(req.line);
        let ready = req.arrival + self.cfg.controller_overhead;
        if !self.queue.try_push(req, mapped) {
            self.spill.push_back((req, mapped));
        }
        (mapped.channel, ready)
    }

    fn drain_spill(&mut self) {
        while !self.queue.is_full() {
            match self.spill.pop_front() {
                Some((req, mapped)) => {
                    let ok = self.queue.try_push(req, mapped);
                    debug_assert!(ok, "queue had space");
                }
                None => break,
            }
        }
    }

    /// True if any transaction is queued (or spilled) for channel `ch`,
    /// or a dropped prefetch is waiting for an idle-slot re-issue.
    pub fn has_work(&self, ch: u32) -> bool {
        self.queue.iter().any(|e| e.mapped.channel == ch)
            || self.spill.iter().any(|(_, m)| m.channel == ch)
            || self
                .reliability
                .as_deref()
                .is_some_and(|r| !r.pending[ch as usize].is_empty())
    }

    /// A completion was observed on `ch`: release its in-flight slot.
    pub fn complete(&mut self, ch: u32) {
        let c = &mut self.channels[ch as usize];
        c.inflight = c.inflight.saturating_sub(1);
    }

    /// Issues any refresh whose deadline has passed on channel `ch`.
    /// A refresh occupies every rank of the DIMM for `t_rfc`, which
    /// counts as busy time for the power-mode residency model.
    fn run_refreshes(&mut self, ch: u32, now: Time) {
        let ranks = self.cfg.ranks_per_dimm;
        let dimms_per_channel = self.cfg.dimms_per_channel;
        let mut ops = std::mem::take(&mut self.refresh_buf);
        ops.clear();
        self.refresh_mgr.due(ch, now, &mut ops);
        let channel = &mut self.channels[ch as usize];
        for op in &ops {
            match &mut channel.path {
                ChannelPath::Fbd { dimms, .. } => {
                    dimms[op.dimm as usize].refresh(op.at, op.t_rfc);
                }
                ChannelPath::Ddr2 { dimms, .. } => {
                    // Refresh every rank of this DIMM (the bank
                    // arrays are laid out `dimm * ranks + rank`).
                    for r in 0..ranks {
                        dimms[(op.dimm * ranks + r) as usize].refresh_all(op.at, op.t_rfc);
                    }
                }
            }
            for r in 0..ranks {
                let i = ((ch * dimms_per_channel + op.dimm) * ranks + r) as usize;
                self.power[i].note_busy(op.at, op.at + op.t_rfc);
            }
        }
        self.refresh_buf = ops;
    }

    /// Runs one scheduling decision for channel `ch` at `now`.
    ///
    /// Convenience wrapper over [`Self::decide_into`] that allocates a
    /// fresh result; the hot loop uses `decide_into` with a reused
    /// buffer instead.
    pub fn decide(&mut self, ch: u32, now: Time) -> DecideResult {
        let mut issued = Vec::new();
        let next_decision = self.decide_into(ch, now, &mut issued);
        DecideResult {
            issued,
            next_decision,
        }
    }

    /// Runs one scheduling decision for channel `ch` at `now`, pushing
    /// issued transactions into `issued` (not cleared first) and
    /// returning when the channel should next decide (`None`: wait for
    /// a new arrival or a completion).
    pub fn decide_into(&mut self, ch: u32, now: Time, issued: &mut Vec<Issued>) -> Option<Time> {
        if self.refresh_active {
            self.run_refreshes(ch, now);
        }
        if self.channels[ch as usize].inflight >= MAX_INFLIGHT_PER_CHANNEL {
            self.host.mark_sampled(Phase::Controller);
            return None;
        }
        let Some(id) = self.pick_for(ch, now) else {
            // The channel has an idle slot: recovery work (a prefetch
            // re-issue, then a due scrub sweep) may claim it. Demand
            // traffic always won the pick above, so recovery never
            // displaces a schedulable transaction.
            if self.reliability.is_some() {
                if let Some(next) = self.dispatch_recovery(ch, now, issued) {
                    self.host.mark_sampled(Phase::Datapath);
                    return Some(next);
                }
            }
            // Nothing ready now; maybe a queued transaction becomes
            // schedulable later (spilled ones re-enter via the queue).
            let overhead = self.cfg.controller_overhead;
            let next = self
                .queue
                .iter()
                .filter(|e| e.mapped.channel == ch)
                .map(|e| e.req.arrival + overhead)
                .filter(|t| *t > now)
                .min();
            self.host.mark_sampled(Phase::Controller);
            return next;
        };
        let entry = self.queue.remove(id).expect("picked entry exists");
        self.drain_spill();
        let first_is_write = entry.req.kind == AccessKind::Write;
        // Everything up to the pick is controller work; the execute
        // calls below are the transaction's datapath.
        self.host.mark_sampled(Phase::Controller);
        issued.push(self.execute(entry, now));
        self.channels[ch as usize].inflight += 1;
        // Burst the write drain on a shared-bus channel: commit the whole
        // batch in one decision so the next reads' ACT/tRCD pipeline
        // overlaps the write burst on the data bus (what a real
        // controller's command scheduler achieves).
        if first_is_write && self.cfg.tech == MemoryTech::Ddr2 {
            while self.channels[ch as usize].inflight < MAX_INFLIGHT_PER_CHANNEL {
                let Some(nid) = self.pick_for(ch, now) else {
                    break;
                };
                let next_entry = self.queue.remove(nid).expect("picked entry exists");
                if next_entry.req.kind != AccessKind::Write {
                    // Put it back; reads resume at the next decision.
                    self.queue.restore(next_entry);
                    break;
                }
                self.drain_spill();
                issued.push(self.execute(next_entry, now));
                self.channels[ch as usize].inflight += 1;
            }
        }
        self.host.mark_sampled(Phase::Datapath);
        Some(self.next_slot(ch, now))
    }

    /// Applies the channel's scheduling policy to its ready transactions.
    fn pick_for(&mut self, ch: u32, now: Time) -> Option<fbd_types::RequestId> {
        let overhead = self.cfg.controller_overhead;
        let ready = |e: &QueueEntry| e.mapped.channel == ch && e.req.arrival + overhead <= now;
        {
            let table = self.table.as_ref();
            let channels = &self.channels;
            // Bank-readiness window: a bank that can accept an ACT soon
            // keeps the data bus busy; one deep in its tRC/precharge
            // window would stall it.
            let slack = self.clock * 2;
            let mut classify = |e: &QueueEntry| -> SchedClass {
                if e.req.kind.is_read() {
                    if let Some(t) = table {
                        if t.would_hit(ch, e.mapped.dimm, e.req.line) {
                            return SchedClass::Hit;
                        }
                    }
                }
                let ranks = self.cfg.ranks_per_dimm;
                let (row_open, act_at, wtr_until) = match &channels[ch as usize].path {
                    ChannelPath::Fbd { dimms, .. } => {
                        let d = &dimms[e.mapped.dimm as usize];
                        (
                            d.is_row_open_at(
                                e.mapped.rank as usize,
                                e.mapped.bank as usize,
                                e.mapped.row,
                            ),
                            d.earliest_act_at(e.mapped.rank as usize, e.mapped.bank as usize),
                            d.read_turnaround_until(e.mapped.rank as usize),
                        )
                    }
                    ChannelPath::Ddr2 { dimms, .. } => {
                        let d = &dimms[(e.mapped.dimm * ranks + e.mapped.rank) as usize];
                        (
                            d.is_row_open(e.mapped.bank as usize, e.mapped.row),
                            d.earliest_act(e.mapped.bank as usize),
                            d.read_turnaround_until(),
                        )
                    }
                };
                // A read into a rank still inside its write-to-read
                // turnaround would stall; prefer ranks past it.
                let wtr_blocked = e.req.kind.is_read() && wtr_until > now + slack;
                if row_open && !wtr_blocked {
                    SchedClass::Hit
                } else if act_at <= now + slack && !wtr_blocked {
                    SchedClass::Ready
                } else {
                    SchedClass::NotReady
                }
            };
            let mut candidates = std::mem::take(&mut self.cand_buf);
            candidates.clear();
            candidates.extend(self.queue.iter().filter(|e| ready(e)).copied());
            let picked = self.scheds[ch as usize].pick(&candidates, &mut classify);
            self.cand_buf = candidates;
            picked
        }
    }

    /// The earliest instant after `now` at which another command can be
    /// scheduled on this channel (one command slot later).
    fn next_slot(&self, _ch: u32, now: Time) -> Time {
        match self.cfg.tech {
            MemoryTech::FbDimm { .. } => now + (self.clock * 2) / 3,
            MemoryTech::Ddr2 => now + self.clock,
        }
    }

    fn execute(&mut self, entry: QueueEntry, now: Time) -> Issued {
        match entry.req.kind {
            AccessKind::Write => self.execute_write(entry, now),
            _ => self.execute_read(entry, now),
        }
    }

    /// Builds a controller-originated queue entry (scrub sweep or
    /// prefetch re-issue) for `line`, with a synthesized id in the
    /// reserved top-half id space. Arrival is `now`, so the entry
    /// carries no queueing history.
    fn synth_entry(&mut self, kind: AccessKind, line: LineAddr, now: Time) -> QueueEntry {
        let rel = self
            .reliability
            .as_deref_mut()
            .expect("recovery state exists");
        let n = rel.synth;
        rel.synth += 1;
        QueueEntry {
            req: MemRequest::new(RequestId(SYNTH_ID_BASE + n), CoreId(0), kind, line, now),
            mapped: self.mapper.map(line),
            seq: SYNTH_ID_BASE + n,
        }
    }

    /// Tries to fill an idle decision slot with recovery work: a
    /// dropped-prefetch re-issue first (it has a consumer-visible hole
    /// to repair), then a due scrub sweep. A sweep that lands on a
    /// poisoned line issues the repair rewrite in the same decision.
    /// Returns the next decision instant when something was issued.
    fn dispatch_recovery(&mut self, ch: u32, now: Time, issued: &mut Vec<Issued>) -> Option<Time> {
        let reissue = self
            .reliability
            .as_deref_mut()
            .and_then(|r| r.pending[ch as usize].pop_front());
        if let Some(line) = reissue {
            let entry = self.synth_entry(AccessKind::HardwarePrefetch, line, now);
            issued.push(self.execute_read(entry, now));
            self.channels[ch as usize].inflight += 1;
            let rel = self
                .reliability
                .as_deref_mut()
                .expect("recovery state exists");
            rel.counters.reissued += 1;
            return Some(self.next_slot(ch, now));
        }
        let line = self.reliability.as_deref_mut().and_then(|r| {
            if !r.scrub_active {
                return None;
            }
            r.scrub.next_scrub(ch, now)
        })?;
        let entry = self.synth_entry(AccessKind::HardwarePrefetch, line, now);
        debug_assert_eq!(
            entry.mapped.channel, ch,
            "scrub lines stay on their channel"
        );
        issued.push(self.execute_read(entry, now));
        self.channels[ch as usize].inflight += 1;
        let rel = self
            .reliability
            .as_deref_mut()
            .expect("recovery state exists");
        rel.counters.scrub_reads += 1;
        // Verify half of read-verify-rewrite: a poisoned line gets a
        // clean rewrite (ordinary posted-write traffic, so its link,
        // bank and energy costs are modeled).
        if rel.poisoned.remove(&line) {
            rel.silent.scrubbed_clean += 1;
            rel.counters.scrub_rewrites += 1;
            let entry = self.synth_entry(AccessKind::Write, line, now);
            issued.push(self.execute_write(entry, now));
            self.channels[ch as usize].inflight += 1;
        }
        Some(self.next_slot(ch, now))
    }

    fn execute_read(&mut self, entry: QueueEntry, now: Time) -> Issued {
        let m = entry.mapped;
        let req = entry.req;
        let demand = req.kind == AccessKind::DemandRead;
        match req.kind {
            AccessKind::DemandRead => self.stats.demand_reads += 1,
            AccessKind::SoftwarePrefetch => self.stats.sw_prefetch_reads += 1,
            AccessKind::HardwarePrefetch => self.stats.hw_prefetch_reads += 1,
            AccessKind::Write => {
                // A write can only land here through a dispatch bug or a
                // malformed replay trace. Degrade by re-routing it onto
                // the write path and counting the violation, so a release
                // run reports a stat instead of panicking mid-replay.
                debug_assert!(false, "writes take the write path");
                self.stats.misrouted_writes += 1;
                return self.execute_write(entry, now);
            }
        }
        self.stats.data_bytes += CACHE_LINE_BYTES;
        let counts = &mut self.chan_counts[m.channel as usize];
        counts.reads += 1;
        counts.bytes += CACHE_LINE_BYTES;
        if let Some(t) = self.tel.as_deref_mut() {
            t.count_read(m.channel);
        }

        let pi = self.pidx(m.channel, m.dimm, m.rank);
        // Under the controller's recovery policy a corrupted northbound
        // transfer for a prefetch read is dropped instead of replayed.
        let droppable = fbd_ctrl::droppable(req.kind);
        // Stage-resolved latency attribution: the stamper's cursor walks
        // the request's lifecycle from arrival to completion, charging
        // each interval to exactly one stage, so the stage durations sum
        // to the end-to-end latency by construction. Retry time (replay
        // backoff and corrupted slots under fault injection) is charged
        // to its own stage at each link crossing.
        let mut st = StageBreakdown::stamper(req.arrival);
        let (completion, service, dropped, escaped) = match &mut self.channels[m.channel as usize]
            .path
        {
            ChannelPath::Fbd { link, dimms } => {
                st.to(Stage::CtrlQueue, req.arrival + entry.queue_wait(now));
                let cmd = link.send_command_checked(now);
                self.host
                    .add(Counter::FramesSent, 1 + cmd.failed.len() as u64);
                if !cmd.failed.is_empty() {
                    self.host.add(Counter::Retries, cmd.failed.len() as u64);
                }
                st.to(Stage::SouthLink, cmd.first_done);
                st.to(Stage::Retry, cmd.slot.done);
                let cmd_at_amb = cmd.slot.done;
                if let Some(t) = self.tel.as_deref_mut() {
                    t.retry_frames(m.channel, TID_SOUTH, &cmd.failed);
                    t.south_frame("cmd", m.channel, cmd.slot);
                }
                let dimm = &mut dimms[m.dimm as usize];
                let rank = m.rank as usize;
                let hit = self
                    .table
                    .as_mut()
                    .is_some_and(|t| t.lookup_hit(m.channel, m.dimm, req.line));
                if hit {
                    let data_ready = match self.cfg.amb.mode {
                        // FBD-APFL: charge the full DRAM latency without
                        // touching the bank (Figure 9's ablation).
                        AmbPrefetchMode::FullLatency => {
                            cmd_at_amb + self.cfg.timings.t_rcd + self.cfg.timings.t_cl
                        }
                        _ => cmd_at_amb,
                    };
                    st.to(Stage::AmbProc, data_ready);
                    self.stats.amb_hits += 1;
                    self.chan_counts[m.channel as usize].amb_hits += 1;
                    let north = link.return_read_data_checked(m.dimm, data_ready, droppable);
                    self.host
                        .add(Counter::FramesSent, 1 + north.failed.len() as u64);
                    if !north.failed.is_empty() {
                        self.host.add(Counter::Retries, north.failed.len() as u64);
                    }
                    st.to(Stage::NorthQueue, north.first_start);
                    st.to(Stage::NorthLink, north.first_done);
                    st.to(Stage::Retry, north.slot.done);
                    if let Some(t) = self.tel.as_deref_mut() {
                        t.amb_hit(m.channel, m.dimm, cmd_at_amb);
                        t.retry_frames(m.channel, TID_NORTH, &north.failed);
                        t.north_frame(m.channel, north.slot);
                    }
                    (
                        north.slot.done,
                        ServiceKind::AmbCacheHit,
                        north.dropped,
                        cmd.escaped || north.escaped,
                    )
                } else if let Some(table) = self.table.as_mut() {
                    // Group fetch: demanded line first, K−1 fills.
                    let k = self.cfg.amb.region_lines;
                    let out = dimm.fetch_group_at(rank, m.bank as usize, m.row, k, cmd_at_amb);
                    st.to(Stage::DramWait, out.service_start());
                    st.to(Stage::DramAct, out.first_cmd_at);
                    st.to(Stage::DramCas, out.demanded_ready);
                    let region = req.line.region(u64::from(k));
                    let fills = region.lines(u64::from(k)).filter(|l| *l != req.line);
                    let filled = table.fill(m.channel, m.dimm, fills);
                    self.stats.lines_prefetched += filled.inserted;
                    self.power[pi].note_busy(out.service_start(), out.fill_done);
                    let north =
                        link.return_read_data_checked(m.dimm, out.demanded_ready, droppable);
                    self.host
                        .add(Counter::FramesSent, 1 + north.failed.len() as u64);
                    if !north.failed.is_empty() {
                        self.host.add(Counter::Retries, north.failed.len() as u64);
                    }
                    st.to(Stage::NorthQueue, north.first_start);
                    st.to(Stage::NorthLink, north.first_done);
                    st.to(Stage::Retry, north.slot.done);
                    if let Some(t) = self.tel.as_deref_mut() {
                        t.group_fetch(m.channel, m.dimm, m.bank, &out, &filled);
                        t.retry_frames(m.channel, TID_NORTH, &north.failed);
                        t.north_frame(m.channel, north.slot);
                    }
                    (
                        north.slot.done,
                        ServiceKind::DramAccessWithPrefetch,
                        north.dropped,
                        cmd.escaped || north.escaped,
                    )
                } else {
                    let out = dimm.read_line_at(rank, m.bank as usize, m.row, cmd_at_amb);
                    st.to(Stage::DramWait, out.service_start());
                    st.to(Stage::DramAct, out.cmd_at);
                    st.to(Stage::DramCas, out.data_ready);
                    if out.row_hit {
                        self.stats.row_hits += 1;
                    }
                    self.power[pi].note_busy(out.service_start(), out.data_end);
                    let north = link.return_read_data_checked(m.dimm, out.data_ready, droppable);
                    self.host
                        .add(Counter::FramesSent, 1 + north.failed.len() as u64);
                    if !north.failed.is_empty() {
                        self.host.add(Counter::Retries, north.failed.len() as u64);
                    }
                    st.to(Stage::NorthQueue, north.first_start);
                    st.to(Stage::NorthLink, north.first_done);
                    st.to(Stage::Retry, north.slot.done);
                    if let Some(t) = self.tel.as_deref_mut() {
                        t.dram_read(m.channel, m.dimm, m.bank, &out);
                        t.retry_frames(m.channel, TID_NORTH, &north.failed);
                        t.north_frame(m.channel, north.slot);
                    }
                    let service = if out.row_hit {
                        ServiceKind::RowBufferHit
                    } else {
                        ServiceKind::DramAccess
                    };
                    (
                        north.slot.done,
                        service,
                        north.dropped,
                        cmd.escaped || north.escaped,
                    )
                }
            }
            ChannelPath::Ddr2 { cmd, bus, dimms } => {
                // Close page needs ACT + CAS on the shared command bus;
                // an open-page hit needs one; a conflict needs three.
                let dimm = &mut dimms[(m.dimm * self.cfg.ranks_per_dimm + m.rank) as usize];
                let n_cmds = if dimm.is_row_open(m.bank as usize, m.row) {
                    1
                } else {
                    2
                };
                let slots = cmd.issue_many(now, n_cmds);
                let op = ColumnOp {
                    kind: ColKind::Read,
                    auto_precharge: self.cfg.page_policy == PagePolicy::ClosePage,
                    burst: self.burst,
                };
                let plan = dimm.plan(m.bank as usize, m.row, op, slots[0], bus);
                // Command-bus slot wait counts as queueing; the bank's
                // precharge/turnaround window is DRAM wait; then the
                // ACT→CAS→burst pipeline maps onto the DRAM stages with
                // the data burst standing in for the return link.
                st.to(Stage::CtrlQueue, plan.first_cmd_at());
                st.to(Stage::DramWait, plan.act_at.unwrap_or(plan.cmd_at));
                st.to(Stage::DramAct, plan.cmd_at);
                st.to(Stage::DramCas, plan.data_start);
                st.to(Stage::NorthLink, plan.data_end);
                let row_hit = !plan.is_row_miss();
                if row_hit {
                    self.stats.row_hits += 1;
                }
                dimm.commit(&plan, bus);
                self.power[pi].note_busy(plan.first_cmd_at(), plan.data_end);
                if let Some(t) = self.tel.as_deref_mut() {
                    t.ddr2_access(m.channel, m.dimm, &plan);
                }
                let service = if row_hit {
                    ServiceKind::RowBufferHit
                } else {
                    ServiceKind::DramAccess
                };
                (plan.data_end, service, false, false)
            }
        };
        // Silent-corruption bookkeeping: an escaped transfer poisons
        // the line; a demand read that sees escaped or already-poisoned
        // data has consumed silent corruption (the failure the scrubber
        // exists to pre-empt). Dropped prefetch returns are remembered
        // for idle-slot re-issue, and every serviced line feeds the
        // scrub policy's candidate pool.
        if let Some(rel) = self.reliability.as_deref_mut() {
            if rel.scrub_active {
                rel.scrub.observe(m.channel, req.line);
            }
            if escaped {
                rel.poisoned.insert(req.line);
            }
            if demand && (escaped || rel.poisoned.contains(&req.line)) {
                rel.silent.demand_consumed += 1;
            }
            if dropped && rel.reissue_budget > 0 {
                let q = &mut rel.pending[m.channel as usize];
                if q.len() < rel.reissue_budget {
                    q.push_back(req.line);
                }
            }
        }
        if demand {
            self.stats.read_latency.record(completion - req.arrival);
            self.stats
                .read_latency_hist
                .record(completion - req.arrival);
            if let Some(t) = self.tel.as_deref_mut() {
                let id = t.read_latency;
                t.tel.registry.record(id, completion - req.arrival);
            }
        }
        self.stats
            .bandwidth_series
            .record(completion, CACHE_LINE_BYTES);
        let stages = st.finish();
        debug_assert_eq!(
            stages.total(),
            completion - req.arrival,
            "stage stamps must cover the whole read lifecycle"
        );
        self.profile.record(
            ReqClass::of(req.kind, service),
            &stages,
            completion - req.arrival,
        );
        Issued::Read {
            resp: MemResponse {
                id: req.id,
                core: req.core,
                line: req.line,
                kind: req.kind,
                completion,
                service,
                stages,
                dropped,
            },
        }
    }

    fn execute_write(&mut self, entry: QueueEntry, now: Time) -> Issued {
        let m = entry.mapped;
        let req = entry.req;
        self.stats.writes += 1;
        self.stats.data_bytes += CACHE_LINE_BYTES;
        let counts = &mut self.chan_counts[m.channel as usize];
        counts.writes += 1;
        counts.bytes += CACHE_LINE_BYTES;
        if let Some(t) = self.tel.as_deref_mut() {
            t.count_write(m.channel);
        }
        // A store makes any prefetched copy stale.
        if let Some(table) = self.table.as_mut() {
            table.invalidate(m.channel, m.dimm, req.line);
        }
        let pi = self.pidx(m.channel, m.dimm, m.rank);
        // Posted-write attribution, accept-to-drain: the stamper walks
        // from arrival to the last data beat at the devices, so the
        // stage durations sum to the recorded write latency exactly as
        // they do for reads.
        let mut st = StageBreakdown::stamper(req.arrival);
        let (done, escaped) = match &mut self.channels[m.channel as usize].path {
            ChannelPath::Fbd { link, dimms } => {
                st.to(Stage::CtrlQueue, req.arrival + entry.queue_wait(now));
                let wdata = link.send_write_data_checked(now);
                self.host
                    .add(Counter::FramesSent, 1 + wdata.failed.len() as u64);
                if !wdata.failed.is_empty() {
                    self.host.add(Counter::Retries, wdata.failed.len() as u64);
                }
                st.to(Stage::SouthLink, wdata.first_done);
                st.to(Stage::Retry, wdata.slot.done);
                let out = dimms[m.dimm as usize].write_line_at(
                    m.rank as usize,
                    m.bank as usize,
                    m.row,
                    wdata.slot.done,
                );
                // The AMB buffers the posted write until its bank can
                // take the drain, so bank-availability wait is AMB
                // buffering here, not DRAM time: the DRAM stages start
                // at the first drain command.
                st.to(Stage::AmbProc, out.service_start());
                st.to(Stage::DramAct, out.cmd_at);
                st.to(Stage::DramCas, out.data_end);
                self.power[pi].note_busy(out.service_start(), out.data_end);
                if let Some(t) = self.tel.as_deref_mut() {
                    t.retry_frames(m.channel, TID_SOUTH, &wdata.failed);
                    t.south_frame("wdata", m.channel, wdata.slot);
                    t.dram_write(m.channel, m.dimm, m.bank, &out);
                }
                (out.data_end, wdata.escaped)
            }
            ChannelPath::Ddr2 { cmd, bus, dimms } => {
                let dimm = &mut dimms[(m.dimm * self.cfg.ranks_per_dimm + m.rank) as usize];
                let n_cmds = if dimm.is_row_open(m.bank as usize, m.row) {
                    1
                } else {
                    2
                };
                let slots = cmd.issue_many(now, n_cmds);
                let op = ColumnOp {
                    kind: ColKind::Write,
                    auto_precharge: self.cfg.page_policy == PagePolicy::ClosePage,
                    burst: self.burst,
                };
                let plan = dimm.plan(m.bank as usize, m.row, op, slots[0], bus);
                // Same mapping as DDR2 reads: command-bus slot wait is
                // queueing, the bank's precharge/turnaround window is
                // DRAM wait, and the write burst on the shared data bus
                // stands in for the return link.
                st.to(Stage::CtrlQueue, plan.first_cmd_at());
                st.to(Stage::DramWait, plan.act_at.unwrap_or(plan.cmd_at));
                st.to(Stage::DramAct, plan.cmd_at);
                st.to(Stage::DramCas, plan.data_start);
                st.to(Stage::NorthLink, plan.data_end);
                dimm.commit(&plan, bus);
                self.power[pi].note_busy(plan.first_cmd_at(), plan.data_end);
                if let Some(t) = self.tel.as_deref_mut() {
                    t.ddr2_access(m.channel, m.dimm, &plan);
                }
                (plan.data_end, false)
            }
        };
        // A clean overwrite repairs latent corruption; escaped write
        // data means the devices stored garbage nobody will re-send.
        if let Some(rel) = self.reliability.as_deref_mut() {
            if rel.scrub_active {
                rel.scrub.observe(m.channel, req.line);
            }
            if escaped {
                rel.poisoned.insert(req.line);
            } else {
                rel.poisoned.remove(&req.line);
            }
        }
        self.stats.bandwidth_series.record(done, CACHE_LINE_BYTES);
        let stages = st.finish();
        debug_assert_eq!(
            stages.total(),
            done - req.arrival,
            "stage stamps must cover the whole write lifecycle"
        );
        self.profile
            .record(ReqClass::Write, &stages, done - req.arrival);
        Issued::Write { done }
    }

    /// Statistics accumulated so far, with DRAM operation counters folded
    /// in from every DIMM.
    ///
    /// This clones the stats struct (including its histogram and series
    /// buffers) — fine for diagnostics and tests, but a finished run
    /// should move them out once via [`Self::finish_stats`] instead.
    pub fn stats(&self) -> MemStats {
        let mut s = self.stats.clone();
        self.fold_dimm_ops(&mut s);
        s
    }

    /// Moves the accumulated statistics out (DRAM operation counters
    /// folded in from every DIMM) without cloning the histogram and
    /// bandwidth-series buffers. Call once when the run is over; the
    /// internal stats are left empty.
    pub fn finish_stats(&mut self) -> MemStats {
        let mut s = std::mem::take(&mut self.stats);
        self.fold_dimm_ops(&mut s);
        s
    }

    fn fold_dimm_ops(&self, s: &mut MemStats) {
        for c in &self.channels {
            match &c.path {
                ChannelPath::Fbd { dimms, .. } => {
                    for d in dimms {
                        s.dram_ops.merge(&d.ops());
                        s.dram_active_time += d.active_time();
                    }
                }
                ChannelPath::Ddr2 { dimms, .. } => {
                    for d in dimms {
                        s.dram_ops.merge(d.ops());
                        s.dram_active_time += d.active_time();
                    }
                }
            }
        }
    }

    /// The end-to-end energy report for the run so far, evaluated at
    /// `end`: per-rank operation counts and power-mode residencies fed
    /// through the Micron [`EnergyModel`] matching the substrate's data
    /// rate (DDR3 currents for the DDR3-speed substrates, DDR2-667
    /// otherwise), with AMB core/link power included on FB-DIMM
    /// subsystems. The report names the current set it used.
    pub fn energy_report(&self, end: Time) -> EnergyReport {
        let buffered = matches!(self.cfg.tech, MemoryTech::FbDimm { .. });
        let ddr3 = matches!(self.cfg.data_rate, DataRate::MTS1333 | DataRate::MTS1066);
        let model = if ddr3 {
            EnergyModel::micron_ddr3_1333(buffered)
        } else {
            EnergyModel::micron_ddr2_667(buffered)
        };
        let ranks = self.cfg.ranks_per_dimm;
        let mut activity = Vec::with_capacity(self.power.len());
        for (ch, c) in self.channels.iter().enumerate() {
            for d in 0..self.cfg.dimms_per_channel {
                for r in 0..ranks {
                    let ops = match &c.path {
                        ChannelPath::Fbd { dimms, .. } => *dimms[d as usize].rank_ops(r as usize),
                        ChannelPath::Ddr2 { dimms, .. } => *dimms[(d * ranks + r) as usize].ops(),
                    };
                    activity.push(RankActivity {
                        channel: ch as u32,
                        dimm: d,
                        rank: r,
                        ops,
                        residency: self.power[self.pidx(ch as u32, d, r)].residency(end),
                    });
                }
            }
        }
        let amb_dimms = if buffered {
            self.cfg.logical_channels * self.cfg.dimms_per_channel
        } else {
            0
        };
        model.report(&activity, end - Time::ZERO, amb_dimms)
    }

    /// The configuration this subsystem was built from.
    pub fn config(&self) -> &MemoryConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(id: u64, line: u64, at: Time) -> MemRequest {
        MemRequest::new(
            RequestId(id),
            CoreId(0),
            AccessKind::DemandRead,
            LineAddr::new(line),
            at,
        )
    }

    #[test]
    fn scrub_sweeps_issue_traffic_on_a_clean_channel() {
        let mut cfg = MemoryConfig::fbdimm_default();
        cfg.logical_channels = 1;
        cfg.faults.scrub = ScrubPolicyKind::Patrol;
        cfg.faults.scrub_interval_ns = 10;
        let mut mem = MemorySystem::new(&cfg);
        let (ch, ready) = mem.submit(demand(1, 0, Time::ZERO));
        let r = mem.decide(ch, ready);
        assert_eq!(r.issued.len(), 1, "the demand read issues first");
        mem.complete(ch);
        // Channel idle, one line observed: the next decision sweeps it.
        let r = mem.decide(ch, Time::from_ns(1_000));
        assert_eq!(r.issued.len(), 1, "the idle slot runs a scrub read");
        assert!(r.next_decision.is_some());
        let fr = mem
            .fault_report(Time::from_ns(2_000))
            .expect("scrub-only runs still report recovery activity");
        assert_eq!(fr.counters.scrub_reads, 1);
        assert_eq!(
            fr.counters.scrub_rewrites, 0,
            "a clean line needs no rewrite"
        );
        assert_eq!(fr.counters.injected, 0);
        assert_eq!(fr.silent, SilentErrorReport::default());
        // Scrub traffic is attributed to the hw-prefetch class, so the
        // stage-sum invariant ran on it (debug_assert in execute_read).
        let s = mem.stats();
        assert_eq!(s.hw_prefetch_reads, 1);
    }

    #[test]
    fn dropped_prefetches_are_reissued_in_idle_slots() {
        let mut cfg = MemoryConfig::fbdimm_default();
        cfg.logical_channels = 1;
        cfg.faults.ber = 1.0; // every northbound prefetch return drops
        cfg.faults.seed = 7;
        cfg.faults.reissue_budget = 4;
        let mut mem = MemorySystem::new(&cfg);
        let (ch, ready) = mem.submit(MemRequest::new(
            RequestId(1),
            CoreId(0),
            AccessKind::HardwarePrefetch,
            LineAddr::new(3),
            Time::ZERO,
        ));
        let r = mem.decide(ch, ready);
        assert_eq!(r.issued.len(), 1);
        let Issued::Read { resp } = r.issued[0] else {
            panic!("a prefetch read was issued");
        };
        assert!(resp.dropped, "at BER 1.0 the prefetch return is dropped");
        mem.complete(ch);
        assert!(mem.has_work(ch), "a remembered drop counts as pending work");
        let r = mem.decide(ch, Time::from_ns(5_000));
        assert_eq!(r.issued.len(), 1, "the idle slot re-issues the drop");
        let fr = mem
            .fault_report(Time::from_ns(10_000))
            .expect("faulted run");
        assert_eq!(fr.counters.reissued, 1);
        assert!(fr.counters.dropped_prefetch >= 1);
    }

    #[test]
    fn escapes_poison_lines_and_patrol_scrub_repairs_them() {
        let mut cfg = MemoryConfig::fbdimm_default();
        cfg.logical_channels = 1;
        cfg.faults.ber = 1.0; // every frame corrupt ...
        cfg.faults.crc_bits = 1; // ... and half the corruptions escape
        cfg.faults.seed = 42;
        cfg.faults.scrub = ScrubPolicyKind::Patrol;
        cfg.faults.scrub_interval_ns = 10;
        let mut mem = MemorySystem::new(&cfg);
        let mut t = Time::ZERO;
        for i in 0..50 {
            t = Time::from_ns(1_000 * (i + 1));
            let (ch, _) = mem.submit(demand(i, 5, t));
            let r = mem.decide(ch, t + cfg.controller_overhead);
            assert_eq!(r.issued.len(), 1);
            mem.complete(ch);
        }
        let fr = mem.fault_report(t).expect("faulted run");
        assert!(fr.counters.escaped > 0, "a 1-bit CRC lets escapes through");
        assert_eq!(
            fr.counters.detected + fr.counters.escaped,
            fr.counters.injected,
            "every injection is either detected or escaped"
        );
        assert_eq!(fr.silent.poisoned_lines, 1, "line 5 is poisoned");
        assert!(
            fr.silent.demand_consumed > 0,
            "later demand reads consumed the poisoned line"
        );
        // An idle decision sweeps the (only) observed line and repairs
        // it with a rewrite in the same decision.
        let r = mem.decide(0, t + Dur::from_ns(1_000));
        assert!(r.issued.len() >= 2, "scrub read plus repair rewrite");
        let fr = mem.fault_report(t + Dur::from_ns(2_000)).expect("report");
        assert!(fr.silent.scrubbed_clean >= 1);
        assert!(fr.counters.scrub_rewrites >= 1);
    }
}
