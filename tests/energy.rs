//! End-to-end tests of the DRAM energy model: the per-run
//! [`EnergyReport`](fbd_power::EnergyReport) must reflect what the
//! simulated memory system actually did, and the paper's power-saving
//! claim (§5.5) must reproduce — AMB prefetching cuts row activations,
//! and with them total DRAM energy, on streaming workloads.

use fbd_core::RunSpec;
use fbd_types::config::MemoryConfig;

#[test]
fn prefetch_cuts_activations_and_total_energy_on_streaming() {
    let base = RunSpec::paper_default(1)
        .workload("1C-swim")
        .budget(60_000)
        .seed(42);
    let off = base.clone().with_prefetch(false).run();
    let on = base.with_prefetch(true).run();

    assert!(
        on.mem.dram_ops.act_pre < off.mem.dram_ops.act_pre,
        "AP must activate fewer rows on swim: {} vs {}",
        on.mem.dram_ops.act_pre,
        off.mem.dram_ops.act_pre
    );
    assert!(
        on.energy.total_nj() < off.energy.total_nj(),
        "AP must lower total memory energy on swim: {:.0} nJ vs {:.0} nJ",
        on.energy.total_nj(),
        off.energy.total_nj()
    );
    // The saving has the right provenance: less activation energy for
    // the same committed instructions.
    assert!(on.energy.activation_nj < off.energy.activation_nj);
}

#[test]
fn report_components_are_consistent() {
    let r = RunSpec::paper_default(1)
        .workload("1C-mgrid")
        .budget(40_000)
        .run();
    let e = &r.energy;
    let sum = e.activation_nj + e.burst_nj + e.refresh_nj + e.background_nj + e.amb_nj;
    assert!((sum - e.total_nj()).abs() < 1e-6 * e.total_nj());
    assert!(e.total_nj() > 0.0);
    assert!(e.avg_power_w() > 0.0);
    // Every rank's mode residency accounts for the full run.
    for rank in &e.ranks {
        let res = rank.residency;
        assert_eq!(res.total(), r.elapsed, "rank residency must span the run");
    }
    // The per-rank split sums back to the report's DRAM totals.
    let dyn_sum: f64 = e.ranks.iter().map(|r| r.dynamic_nj).sum();
    let bg_sum: f64 = e.ranks.iter().map(|r| r.background_nj).sum();
    assert!((dyn_sum - e.dynamic_nj()).abs() < 1e-6 * e.dynamic_nj().max(1.0));
    assert!((bg_sum - e.background_nj).abs() < 1e-6 * e.background_nj.max(1.0));
}

#[test]
fn ddr2_runs_report_no_amb_energy() {
    let r = RunSpec::paper_default(1)
        .workload("1C-swim")
        .memory(MemoryConfig::ddr2_default())
        .budget(30_000)
        .run();
    assert_eq!(r.energy.amb_nj, 0.0, "DDR2 DIMMs carry no AMB");
    assert!(r.energy.total_nj() > 0.0);
}

#[test]
fn fbdimm_runs_carry_amb_link_power() {
    let r = RunSpec::paper_default(1)
        .workload("1C-swim")
        .budget(30_000)
        .run();
    assert!(r.energy.amb_nj > 0.0, "FB-DIMM channels pay AMB power");
}

#[test]
fn background_dominates_at_low_utilization() {
    // Low utilization = a light workload on an overprovisioned memory
    // system: one core running the integer benchmark `parser` against
    // four FB-DIMM channels. Most ranks idle most of the time, so
    // static background energy must dominate the DRAM total (the
    // effect Figure 13's low-utilization bars show). A streaming
    // workload on the same system keeps the ranks busy and must sit
    // well below that.
    let frac = |workload: &str| {
        let mut spec = RunSpec::paper_default(1).workload(workload).budget(40_000);
        spec.system_mut().mem.logical_channels = 4;
        spec.run().energy.background_fraction()
    };
    let light = frac("1C-parser");
    let heavy = frac("1C-swim");
    assert!(
        light > 0.5,
        "background fraction {light:.2} should dominate a low-utilization run"
    );
    assert!(
        light > heavy,
        "background share must fall as utilization rises: {light:.2} vs {heavy:.2}"
    );
}

#[test]
fn longer_runs_spend_more_energy() {
    let base = RunSpec::paper_default(1).workload("1C-swim").seed(7);
    let short = base.clone().budget(20_000).run();
    let long = base.budget(60_000).run();
    assert!(long.energy.total_nj() > short.energy.total_nj());
    assert!(long.energy.background_nj > short.energy.background_nj);
}
