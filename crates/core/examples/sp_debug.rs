//! Diagnostic: how much software prefetching changes swim's miss stream.
use fbd_core::RunSpec;
use fbd_types::config::SystemConfig;
use fbd_workloads::Workload;

fn main() {
    let w = Workload::new("1C-swim", &["swim"]);
    for sp in [false, true] {
        let mut cfg = SystemConfig::paper_default(1);
        cfg.cpu.software_prefetch = sp;
        let r = RunSpec::new(cfg)
            .with_workload(w.clone())
            .seed(42)
            .budget(200_000)
            .run();
        println!(
            "SP={sp}: ipc={:.3} demand_reads={} swpf_reads={} writes={} lat={:.1}ns bw={:.2}",
            r.cores[0].ipc(),
            r.mem.demand_reads,
            r.mem.sw_prefetch_reads,
            r.mem.writes,
            r.avg_read_latency_ns(),
            r.bandwidth_gbps()
        );
    }
}
