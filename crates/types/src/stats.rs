//! Statistics primitives shared by all simulator components.
//!
//! These are plain accumulators — cheap to update on the simulation fast
//! path, with derived metrics (means, rates, GB/s) computed at reporting
//! time. The paper's evaluation metrics (average read latency, utilized
//! bandwidth, prefetch coverage/efficiency, ACT/PRE and column-access
//! counts for the power model) are all built from these.

use core::fmt;

use crate::time::Dur;

/// Running sum/count/max accumulator for latencies.
///
/// # Examples
///
/// ```
/// use fbd_types::stats::LatencyStat;
/// use fbd_types::time::Dur;
///
/// let mut lat = LatencyStat::new();
/// lat.record(Dur::from_ns(63));
/// lat.record(Dur::from_ns(33));
/// assert_eq!(lat.count(), 2);
/// assert_eq!(lat.mean(), Some(Dur::from_ns(48)));
/// assert_eq!(lat.max(), Some(Dur::from_ns(63)));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyStat {
    sum_ps: u128,
    count: u64,
    max_ps: u64,
}

impl LatencyStat {
    /// An empty accumulator.
    pub const fn new() -> LatencyStat {
        LatencyStat {
            sum_ps: 0,
            count: 0,
            max_ps: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, sample: Dur) {
        self.sum_ps += u128::from(sample.as_ps());
        self.count += 1;
        self.max_ps = self.max_ps.max(sample.as_ps());
    }

    /// Records `n` identical samples at once — used by the analytic
    /// fast fidelity to populate stats from predicted means.
    pub fn record_n(&mut self, sample: Dur, n: u64) {
        if n == 0 {
            return;
        }
        self.sum_ps += u128::from(sample.as_ps()) * u128::from(n);
        self.count += n;
        self.max_ps = self.max_ps.max(sample.as_ps());
    }

    /// Number of samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample, or `None` if no samples were recorded.
    pub fn mean(&self) -> Option<Dur> {
        if self.count == 0 {
            None
        } else {
            Some(Dur::from_ps((self.sum_ps / u128::from(self.count)) as u64))
        }
    }

    /// Largest sample, or `None` if no samples were recorded.
    pub fn max(&self) -> Option<Dur> {
        if self.count == 0 {
            None
        } else {
            Some(Dur::from_ps(self.max_ps))
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyStat) {
        self.sum_ps += other.sum_ps;
        self.count += other.count;
        self.max_ps = self.max_ps.max(other.max_ps);
    }
}

impl fmt::Display for LatencyStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(mean) => write!(f, "mean {mean} over {} samples", self.count),
            None => f.write_str("no samples"),
        }
    }
}

/// A log-scaled latency histogram for percentile reporting.
///
/// Buckets are 4 ns wide up to 256 ns, then 32 ns wide up to 2 µs, with
/// one overflow bucket — resolution where the action is (the 33–63 ns
/// idle latencies and the queueing region) and bounded memory.
///
/// # Examples
///
/// ```
/// use fbd_types::stats::LatencyHistogram;
/// use fbd_types::time::Dur;
///
/// let mut h = LatencyHistogram::new();
/// for ns in [33u64, 63, 63, 120] {
///     h.record(Dur::from_ns(ns));
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(0.5).unwrap() >= Dur::from_ns(60));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// 64 fine buckets (4 ns) + 55 coarse buckets (32 ns) + overflow.
    buckets: Vec<u64>,
    count: u64,
}

const FINE_BUCKETS: usize = 64;
const FINE_WIDTH_PS: u64 = 4_000;
const COARSE_BUCKETS: usize = 55;
const COARSE_WIDTH_PS: u64 = 32_000;

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: vec![0; FINE_BUCKETS + COARSE_BUCKETS + 1],
            count: 0,
        }
    }

    fn bucket_of(sample: Dur) -> usize {
        let ps = sample.as_ps();
        let fine_span = FINE_BUCKETS as u64 * FINE_WIDTH_PS;
        if ps < fine_span {
            (ps / FINE_WIDTH_PS) as usize
        } else {
            let coarse = (ps - fine_span) / COARSE_WIDTH_PS;
            FINE_BUCKETS + (coarse as usize).min(COARSE_BUCKETS)
        }
    }

    /// Upper edge of a bucket (used as the percentile estimate).
    fn bucket_edge(idx: usize) -> Dur {
        if idx < FINE_BUCKETS {
            Dur::from_ps((idx as u64 + 1) * FINE_WIDTH_PS)
        } else {
            let coarse = (idx - FINE_BUCKETS) as u64;
            Dur::from_ps(FINE_BUCKETS as u64 * FINE_WIDTH_PS + (coarse + 1) * COARSE_WIDTH_PS)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Dur) {
        self.buckets[Self::bucket_of(sample)] += 1;
        self.count += 1;
    }

    /// Records `n` identical samples at once — used by the analytic
    /// fast fidelity to populate stats from predicted means.
    pub fn record_n(&mut self, sample: Dur, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(sample)] += n;
        self.count += n;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Upper-bound estimate of the `q`-quantile (0 < q ≤ 1), or `None`
    /// if the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `(0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<Dur> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(Self::bucket_edge(i));
            }
        }
        Some(Self::bucket_edge(self.buckets.len() - 1))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Bytes-per-epoch time series, for bandwidth-over-time reporting.
///
/// # Examples
///
/// ```
/// use fbd_types::stats::EpochSeries;
/// use fbd_types::time::{Dur, Time};
///
/// let mut s = EpochSeries::new(Dur::from_ns(1_000)); // 1 µs epochs
/// s.record(Time::from_ns(100), 64);
/// s.record(Time::from_ns(1_500), 128);
/// let gbps = s.series_gbps();
/// assert_eq!(gbps.len(), 2);
/// assert!((gbps[0] - 0.064).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochSeries {
    epoch: Dur,
    buckets: Vec<u64>,
}

impl EpochSeries {
    /// Creates an empty series with the given epoch length.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is zero.
    pub fn new(epoch: Dur) -> EpochSeries {
        assert!(!epoch.is_zero(), "epoch must be non-zero");
        EpochSeries {
            epoch,
            // Pre-reserve so the always-on bandwidth series doesn't
            // reallocate while the hot loop runs (4096 default-length
            // epochs ≈ 4 ms of simulated time, ~32 KiB; growth past
            // that doubles, so later reallocations are rare).
            buckets: Vec::with_capacity(4096),
        }
    }

    /// Adds `bytes` transferred at instant `at`.
    pub fn record(&mut self, at: crate::time::Time, bytes: u64) {
        let idx = (at.as_ps() / self.epoch.as_ps()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += bytes;
    }

    /// The configured epoch length.
    pub fn epoch(&self) -> Dur {
        self.epoch
    }

    /// Per-epoch bandwidth in GB/s.
    pub fn series_gbps(&self) -> Vec<f64> {
        let secs = self.epoch.as_secs_f64();
        self.buckets
            .iter()
            .map(|&b| b as f64 / secs / 1e9)
            .collect()
    }

    /// Merges another series recorded with the same epoch.
    ///
    /// # Panics
    ///
    /// Panics if the epoch lengths differ.
    pub fn merge(&mut self, other: &EpochSeries) {
        assert_eq!(self.epoch, other.epoch, "mismatched epochs");
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

impl Default for EpochSeries {
    /// One-microsecond epochs.
    fn default() -> Self {
        EpochSeries::new(Dur::from_ps(1_000_000))
    }
}

/// DRAM operation counters, the inputs to the power model (paper §5.5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramOpCounts {
    /// Activate/precharge *pairs* (close-page auto-precharge makes their
    /// counts equal, so they are counted as pairs).
    pub act_pre: u64,
    /// Column read accesses (including prefetch fills).
    pub col_reads: u64,
    /// Column write accesses.
    pub col_writes: u64,
    /// All-bank auto-refresh operations (zero when refresh is disabled,
    /// as in the paper).
    pub refreshes: u64,
}

impl DramOpCounts {
    /// Total column accesses.
    pub fn col_total(&self) -> u64 {
        self.col_reads + self.col_writes
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &DramOpCounts) {
        self.act_pre += other.act_pre;
        self.col_reads += other.col_reads;
        self.col_writes += other.col_writes;
        self.refreshes += other.refreshes;
    }
}

/// Memory-subsystem statistics for one simulation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MemStats {
    /// Demand reads served.
    pub demand_reads: u64,
    /// Software-prefetch reads served.
    pub sw_prefetch_reads: u64,
    /// Hardware-prefetch reads served (extension; zero in paper
    /// configurations).
    pub hw_prefetch_reads: u64,
    /// Writes retired to DRAM.
    pub writes: u64,
    /// Writes that reached the read execution path (a dispatch bug or a
    /// malformed replay trace); they are re-routed onto the write path
    /// and counted here instead of panicking in release runs.
    pub misrouted_writes: u64,
    /// Reads (demand or software prefetch) served from the AMB prefetch
    /// buffer.
    pub amb_hits: u64,
    /// Cachelines prefetched into AMB caches (the K−1 extra lines of
    /// each group fetch).
    pub lines_prefetched: u64,
    /// Row-buffer hits (open-page mode only).
    pub row_hits: u64,
    /// Demand-read latency distribution (controller arrival → critical
    /// data at controller).
    pub read_latency: LatencyStat,
    /// Demand-read latency histogram, for percentile reporting.
    pub read_latency_hist: LatencyHistogram,
    /// Data bytes moved on the processor-visible channel (reads +
    /// writes), for utilized-bandwidth reporting.
    pub data_bytes: u64,
    /// Bandwidth-over-time series (1 µs epochs).
    pub bandwidth_series: EpochSeries,
    /// Summed rank-active time across all ranks (static-power input;
    /// compare against `ranks × elapsed`).
    pub dram_active_time: Dur,
    /// DRAM operation counters for the power model.
    pub dram_ops: DramOpCounts,
}

impl MemStats {
    /// Prefetch coverage: fraction of reads served from the AMB cache
    /// (`#prefetch_hit / #read`, paper §5.2). Bounded by (K−1)/K for
    /// K-line regions, since every region's first read fetches it.
    pub fn prefetch_coverage(&self) -> f64 {
        ratio(self.amb_hits, self.total_reads())
    }

    /// Prefetch efficiency (accuracy): fraction of prefetched lines that
    /// were later demanded (`#prefetch_hit / #prefetch`, paper §5.2).
    pub fn prefetch_efficiency(&self) -> f64 {
        ratio(self.amb_hits, self.lines_prefetched)
    }

    /// Utilized bandwidth in GB/s over a run of length `elapsed`.
    pub fn utilized_bandwidth_gbps(&self, elapsed: Dur) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.data_bytes as f64 / elapsed.as_secs_f64() / 1e9
        }
    }

    /// All reads (demand + software/hardware prefetch).
    pub fn total_reads(&self) -> u64 {
        self.demand_reads + self.sw_prefetch_reads + self.hw_prefetch_reads
    }

    /// Merges per-channel statistics into a run total.
    pub fn merge(&mut self, other: &MemStats) {
        self.demand_reads += other.demand_reads;
        self.sw_prefetch_reads += other.sw_prefetch_reads;
        self.hw_prefetch_reads += other.hw_prefetch_reads;
        self.writes += other.writes;
        self.misrouted_writes += other.misrouted_writes;
        self.amb_hits += other.amb_hits;
        self.lines_prefetched += other.lines_prefetched;
        self.row_hits += other.row_hits;
        self.read_latency.merge(&other.read_latency);
        self.read_latency_hist.merge(&other.read_latency_hist);
        self.data_bytes += other.data_bytes;
        self.bandwidth_series.merge(&other.bandwidth_series);
        self.dram_active_time += other.dram_active_time;
        self.dram_ops.merge(&other.dram_ops);
    }
}

/// Per-core execution statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CoreStats {
    /// Instructions committed.
    pub instructions: u64,
    /// Core cycles elapsed.
    pub cycles: u64,
    /// Demand L2 misses issued by this core.
    pub l2_misses: u64,
    /// L2 accesses by this core (for miss-rate reporting).
    pub l2_accesses: u64,
}

impl CoreStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        ratio(self.instructions, self.cycles)
    }

    /// L2 miss rate.
    pub fn l2_miss_rate(&self) -> f64 {
        ratio(self.l2_misses, self.l2_accesses)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=100u64 {
            h.record(Dur::from_ns(ns));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.percentile(0.5).unwrap();
        assert!(p50 >= Dur::from_ns(50) && p50 <= Dur::from_ns(56), "{p50}");
        let p99 = h.percentile(0.99).unwrap();
        assert!(p99 >= Dur::from_ns(99) && p99 <= Dur::from_ns(104), "{p99}");
        assert!(h.percentile(1.0).unwrap() >= Dur::from_ns(100));
    }

    #[test]
    fn histogram_coarse_and_overflow_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(Dur::from_ns(500)); // coarse region
        h.record(Dur::from_ns(100_000)); // overflow
        assert_eq!(h.count(), 2);
        let p50 = h.percentile(0.5).unwrap();
        assert!(p50 >= Dur::from_ns(500) && p50 < Dur::from_ns(560), "{p50}");
        assert!(h.percentile(1.0).unwrap() >= Dur::from_ns(2_000));
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        a.record(Dur::from_ns(63));
        let mut b = LatencyHistogram::new();
        b.record(Dur::from_ns(33));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        let p50 = a.percentile(0.5).unwrap();
        assert!(
            p50 <= Dur::from_ns(36),
            "median of {{33,63}} near 33: {p50}"
        );
    }

    #[test]
    fn histogram_empty_is_none() {
        assert_eq!(LatencyHistogram::new().percentile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn histogram_rejects_bad_quantile() {
        let _ = LatencyHistogram::new().percentile(0.0);
    }

    #[test]
    fn epoch_series_buckets_and_merge() {
        use crate::time::Time;
        let mut a = EpochSeries::new(Dur::from_ns(1_000));
        a.record(Time::from_ns(0), 640);
        a.record(Time::from_ns(999), 360);
        a.record(Time::from_ns(2_500), 1_000);
        let gbps = a.series_gbps();
        assert_eq!(gbps.len(), 3);
        assert!((gbps[0] - 1.0).abs() < 1e-9);
        assert_eq!(gbps[1], 0.0);
        assert!((gbps[2] - 1.0).abs() < 1e-9);
        let mut b = EpochSeries::new(Dur::from_ns(1_000));
        b.record(Time::from_ns(1_200), 2_000);
        a.merge(&b);
        assert!((a.series_gbps()[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "mismatched epochs")]
    fn epoch_series_merge_rejects_mismatch() {
        let mut a = EpochSeries::new(Dur::from_ns(1_000));
        a.merge(&EpochSeries::new(Dur::from_ns(2_000)));
    }

    #[test]
    fn latency_stat_empty_is_none() {
        let lat = LatencyStat::new();
        assert_eq!(lat.mean(), None);
        assert_eq!(lat.max(), None);
        assert_eq!(format!("{lat}"), "no samples");
    }

    #[test]
    fn latency_stat_merge_combines() {
        let mut a = LatencyStat::new();
        a.record(Dur::from_ns(10));
        let mut b = LatencyStat::new();
        b.record(Dur::from_ns(30));
        b.record(Dur::from_ns(20));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), Some(Dur::from_ns(20)));
        assert_eq!(a.max(), Some(Dur::from_ns(30)));
    }

    #[test]
    fn latency_stat_merge_empty_into_empty_stays_empty() {
        let mut a = LatencyStat::new();
        a.merge(&LatencyStat::new());
        assert_eq!(a.count(), 0);
        assert_eq!(a.mean(), None);
        assert_eq!(a.max(), None);
        // Merging an empty accumulator into a populated one is a no-op.
        let mut b = LatencyStat::new();
        b.record(Dur::from_ns(7));
        let before = b;
        b.merge(&LatencyStat::new());
        assert_eq!(b, before);
    }

    #[test]
    fn latency_stat_extreme_samples_do_not_overflow() {
        // The per-sample ceiling is u64::MAX picoseconds; the u128 sum
        // keeps means exact even when several such samples accumulate.
        let huge = Dur::from_ps(u64::MAX);
        let mut lat = LatencyStat::new();
        lat.record(huge);
        lat.record(huge);
        lat.record(huge);
        assert_eq!(lat.count(), 3);
        assert_eq!(lat.mean(), Some(huge));
        assert_eq!(lat.max(), Some(huge));
        // Merging two maxed-out accumulators still cannot overflow.
        let other = lat;
        lat.merge(&other);
        assert_eq!(lat.count(), 6);
        assert_eq!(lat.mean(), Some(huge));
        assert_eq!(lat.max(), Some(huge));
    }

    #[test]
    fn latency_stat_merge_then_mean_matches_single_accumulator() {
        // Recording interleaved across two accumulators and merging must
        // give exactly the mean/max/count of one accumulator that saw
        // every sample.
        let samples: Vec<Dur> = (1..=25u64).map(|n| Dur::from_ns(n * 3)).collect();
        let mut whole = LatencyStat::new();
        let mut left = LatencyStat::new();
        let mut right = LatencyStat::new();
        for (i, s) in samples.iter().enumerate() {
            whole.record(*s);
            if i % 2 == 0 {
                left.record(*s);
            } else {
                right.record(*s);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
        assert_eq!(left.mean(), whole.mean());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn coverage_and_efficiency_definitions() {
        let stats = MemStats {
            demand_reads: 100,
            amb_hits: 50,
            lines_prefetched: 150,
            ..MemStats::default()
        };
        assert!((stats.prefetch_coverage() - 0.5).abs() < 1e-12);
        assert!((stats.prefetch_efficiency() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_give_zero() {
        let stats = MemStats::default();
        assert_eq!(stats.prefetch_coverage(), 0.0);
        assert_eq!(stats.prefetch_efficiency(), 0.0);
        assert_eq!(stats.utilized_bandwidth_gbps(Dur::ZERO), 0.0);
        assert_eq!(CoreStats::default().ipc(), 0.0);
    }

    #[test]
    fn bandwidth_computation() {
        let stats = MemStats {
            data_bytes: 64_000,
            ..MemStats::default()
        };
        // 64 kB in 10 µs = 6.4 GB/s.
        let bw = stats.utilized_bandwidth_gbps(Dur::from_ns(10_000));
        assert!((bw - 6.4).abs() < 1e-9, "{bw}");
    }

    #[test]
    fn mem_stats_merge_sums_everything() {
        let mut a = MemStats {
            demand_reads: 1,
            sw_prefetch_reads: 2,
            hw_prefetch_reads: 1,
            writes: 3,
            amb_hits: 4,
            lines_prefetched: 5,
            row_hits: 6,
            data_bytes: 7,
            dram_ops: DramOpCounts {
                act_pre: 8,
                col_reads: 9,
                col_writes: 10,
                refreshes: 0,
            },
            ..MemStats::default()
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.demand_reads, 2);
        assert_eq!(a.total_reads(), 8);
        assert_eq!(a.dram_ops.act_pre, 16);
        assert_eq!(a.dram_ops.col_total(), 38);
    }

    #[test]
    fn core_stats_rates() {
        let c = CoreStats {
            instructions: 100,
            cycles: 50,
            l2_misses: 10,
            l2_accesses: 40,
        };
        assert!((c.ipc() - 2.0).abs() < 1e-12);
        assert!((c.l2_miss_rate() - 0.25).abs() < 1e-12);
    }
}
