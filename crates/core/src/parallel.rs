//! Order-preserving parallel execution over a slice of work items.
//!
//! One shared work index feeds scoped worker threads, so long and short
//! items interleave freely, but results land in input order — callers
//! (the `fbdsim compare`/`sweep` grids, the figure benches) report them
//! sequentially and stay byte-for-byte deterministic regardless of
//! thread scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f` over `items` on all available cores, preserving order.
///
/// Spawns at most `items.len()` threads; with an empty slice it spawns
/// none and returns immediately. Panics in `f` propagate out of the
/// thread scope.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map_or(4, |p| p.get())
        .min(n);
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("result slot poisoned"))
        .map(|r| r.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn each_item_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..37).collect();
        let out = parallel_map(&items, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            *i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 37);
        assert_eq!(out, items);
    }
}
