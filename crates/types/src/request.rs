//! Memory transactions exchanged between the CPU side and the memory
//! controller.
//!
//! A [`MemRequest`] is one cacheline-granular transaction (the L2 cache
//! has already filtered the access stream, so every request here is an L2
//! miss or a writeback). The controller answers reads with a
//! [`MemResponse`] carrying completion timing; writes are posted and do
//! not generate responses.

use core::fmt;

use crate::address::LineAddr;
use crate::time::{Dur, Time};

/// Identifies a processor core in a multi-core configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u32);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Unique, monotonically increasing transaction identifier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// The kind of memory transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand read caused by an L2 load/store miss. The issuing core
    /// eventually stalls on the response.
    DemandRead,
    /// A read issued on behalf of a software prefetch instruction that
    /// missed the L2. Non-blocking for the core.
    SoftwarePrefetch,
    /// A read issued by the (optional) hardware stream prefetcher at the
    /// L2. Non-blocking for the core.
    HardwarePrefetch,
    /// A dirty-line writeback from the L2 (posted; no response).
    Write,
}

impl AccessKind {
    /// True for the read kinds (they return data on the northbound
    /// link / data bus; writes only consume command + write bandwidth).
    #[inline]
    pub const fn is_read(self) -> bool {
        !matches!(self, AccessKind::Write)
    }

    /// True for the non-blocking prefetch reads (software or hardware).
    #[inline]
    pub const fn is_prefetch(self) -> bool {
        matches!(
            self,
            AccessKind::SoftwarePrefetch | AccessKind::HardwarePrefetch
        )
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::DemandRead => "read",
            AccessKind::SoftwarePrefetch => "swpf",
            AccessKind::HardwarePrefetch => "hwpf",
            AccessKind::Write => "write",
        };
        f.write_str(s)
    }
}

/// One cacheline-granular memory transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRequest {
    /// Unique transaction id.
    pub id: RequestId,
    /// Issuing core (writes carry the core whose L2 eviction produced
    /// them; used only for accounting).
    pub core: CoreId,
    /// Transaction kind.
    pub kind: AccessKind,
    /// Target cacheline.
    pub line: LineAddr,
    /// Instant the request arrived at the memory controller queue.
    pub arrival: Time,
}

impl MemRequest {
    /// Convenience constructor.
    pub fn new(
        id: RequestId,
        core: CoreId,
        kind: AccessKind,
        line: LineAddr,
        arrival: Time,
    ) -> Self {
        MemRequest {
            id,
            core,
            kind,
            line,
            arrival,
        }
    }
}

impl fmt::Display for MemRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} by {} @{}",
            self.id, self.kind, self.line, self.core, self.arrival
        )
    }
}

/// How a read was ultimately served (for coverage/efficiency accounting
/// and the latency-decomposition experiments).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServiceKind {
    /// Served by DRAM bank access (ACT + CAS, close page) — the common
    /// path without prefetching.
    DramAccess,
    /// Served from the AMB prefetch buffer (paper: "prefetch hit").
    AmbCacheHit,
    /// Served by DRAM, and the access also triggered a K-line group
    /// prefetch into the AMB cache.
    DramAccessWithPrefetch,
    /// Row-buffer hit under open-page policy (no ACT needed).
    RowBufferHit,
}

impl ServiceKind {
    /// True if the demanded data came from the AMB prefetch buffer.
    #[inline]
    pub const fn is_amb_hit(self) -> bool {
        matches!(self, ServiceKind::AmbCacheHit)
    }
}

/// One lifecycle stage of a read transaction, in pipeline order.
///
/// The controller stamps every read at each stage boundary so the
/// per-stage durations provably sum to the end-to-end latency (see
/// [`StageBreakdown`]). Stages a particular path does not exercise
/// (e.g. the DRAM stages of an AMB prefetch-buffer hit, or the link
/// stages of the DDR2 baseline) simply record zero time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Waiting in the controller's transaction queue (arrival until the
    /// scheduler issues the transaction; includes the controller's
    /// fixed overhead).
    CtrlQueue,
    /// Southbound FB-DIMM link: waiting for a command slot, the frame
    /// itself, and transit onto the daisy chain.
    SouthLink,
    /// AMB processing. Zero for cut-through DRAM accesses; the
    /// prefetch-buffer lookup/serve time on AMB hits (non-zero only in
    /// the FBD-APFL full-latency ablation).
    AmbProc,
    /// Waiting for the DRAM bank to accept the first command (tRC /
    /// precharge recovery, bus turnaround, pending refresh).
    DramWait,
    /// Row activation: ACT command until the column command (tRCD).
    DramAct,
    /// Column access: CAS until the first data beats exist (tCL).
    DramCas,
    /// Data ready at the AMB but waiting for a free northbound frame
    /// slot (the response-queue drain).
    NorthQueue,
    /// Northbound return: the data frame plus daisy-chain forwarding
    /// delay. On the DDR2 baseline this is the data-bus burst.
    NorthLink,
    /// Link-level recovery: time spent replaying CRC-corrupted frames
    /// (bounded retries with exponential backoff, plus the fail-over
    /// escalation). Zero unless fault injection is active; may
    /// accumulate on both directions of one transaction.
    Retry,
}

/// All stages, in pipeline order (the order folded stacks and JSON
/// breakdowns are emitted in).
pub const STAGES: [Stage; Stage::COUNT] = [
    Stage::CtrlQueue,
    Stage::SouthLink,
    Stage::AmbProc,
    Stage::DramWait,
    Stage::DramAct,
    Stage::DramCas,
    Stage::NorthQueue,
    Stage::NorthLink,
    Stage::Retry,
];

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 9;

    /// Dense index of this stage (its position in [`STAGES`]).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Stage::CtrlQueue => 0,
            Stage::SouthLink => 1,
            Stage::AmbProc => 2,
            Stage::DramWait => 3,
            Stage::DramAct => 4,
            Stage::DramCas => 5,
            Stage::NorthQueue => 6,
            Stage::NorthLink => 7,
            Stage::Retry => 8,
        }
    }

    /// Short machine-readable label (folded-stack frame / JSON key).
    pub const fn label(self) -> &'static str {
        match self {
            Stage::CtrlQueue => "queue",
            Stage::SouthLink => "south",
            Stage::AmbProc => "amb",
            Stage::DramWait => "dram_wait",
            Stage::DramAct => "dram_act",
            Stage::DramCas => "dram_cas",
            Stage::NorthQueue => "north_queue",
            Stage::NorthLink => "north",
            Stage::Retry => "retry",
        }
    }

    /// True for the three DRAM-bank service stages (wait + ACT + CAS).
    #[inline]
    pub const fn is_dram(self) -> bool {
        matches!(self, Stage::DramWait | Stage::DramAct | Stage::DramCas)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-stage durations of one read; the stages sum to the end-to-end
/// latency by construction (build one with [`StageBreakdown::stamper`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    durs: [Dur; Stage::COUNT],
}

impl StageBreakdown {
    /// A breakdown with every stage at zero.
    pub const ZERO: StageBreakdown = StageBreakdown {
        durs: [Dur::ZERO; Stage::COUNT],
    };

    /// Starts stamping a read that arrived at `start`; advance the
    /// stamper through each stage boundary in order.
    pub fn stamper(start: Time) -> StageStamper {
        StageStamper {
            cursor: start,
            breakdown: StageBreakdown::ZERO,
        }
    }

    /// Time spent in `stage`.
    #[inline]
    pub fn get(&self, stage: Stage) -> Dur {
        self.durs[stage.index()]
    }

    /// Adds `dur` to `stage`.
    #[inline]
    pub fn add(&mut self, stage: Stage, dur: Dur) {
        self.durs[stage.index()] += dur;
    }

    /// Sum over all stages — equals the end-to-end latency when the
    /// breakdown was stamped through to completion.
    pub fn total(&self) -> Dur {
        self.durs.iter().copied().sum()
    }

    /// Total DRAM-bank service time (wait + ACT + CAS) — the component
    /// AMB prefetching removes from the read path.
    pub fn dram_total(&self) -> Dur {
        STAGES
            .iter()
            .filter(|s| s.is_dram())
            .map(|s| self.get(*s))
            .sum()
    }

    /// `(stage, duration)` pairs in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, Dur)> + '_ {
        STAGES.iter().map(move |s| (*s, self.get(*s)))
    }
}

/// Cursor-based builder for a [`StageBreakdown`]: each call to
/// [`to`](Self::to) charges the time from the previous boundary to
/// `at` against one stage. Boundaries are clamped monotone, so the
/// finished breakdown always sums exactly to `final boundary − start`.
#[derive(Clone, Copy, Debug)]
pub struct StageStamper {
    cursor: Time,
    breakdown: StageBreakdown,
}

impl StageStamper {
    /// Charges `stage` with the time from the previous boundary to
    /// `at`; out-of-order boundaries charge zero rather than
    /// underflowing.
    pub fn to(&mut self, stage: Stage, at: Time) {
        let at = at.max(self.cursor);
        self.breakdown.add(stage, at.saturating_since(self.cursor));
        self.cursor = at;
    }

    /// The breakdown stamped so far.
    pub fn finish(self) -> StageBreakdown {
        self.breakdown
    }

    /// The last boundary stamped.
    pub fn cursor(&self) -> Time {
        self.cursor
    }
}

/// Attribution class of a completed transaction: the request kind,
/// refined by whether the AMB prefetch buffer served it. Reads split
/// into four classes; posted writes form one class of their own.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReqClass {
    /// Demand read served by DRAM.
    Demand,
    /// Software-prefetch read served by DRAM.
    SwPrefetch,
    /// Hardware-prefetch read served by DRAM.
    HwPrefetch,
    /// Any read served from the AMB prefetch buffer.
    AmbHit,
    /// Posted write, measured accept-to-drain (arrival to the moment
    /// its data finishes at the devices).
    Write,
}

/// All request classes, in display order (read classes first).
pub const REQ_CLASSES: [ReqClass; ReqClass::COUNT] = [
    ReqClass::Demand,
    ReqClass::SwPrefetch,
    ReqClass::HwPrefetch,
    ReqClass::AmbHit,
    ReqClass::Write,
];

impl ReqClass {
    /// Number of classes.
    pub const COUNT: usize = 5;

    /// Classifies a completed transaction. Writes are always
    /// [`ReqClass::Write`]; for reads, AMB hits take precedence over
    /// the request kind: a demand read served from the prefetch buffer
    /// is an [`ReqClass::AmbHit`].
    pub fn of(kind: AccessKind, service: ServiceKind) -> ReqClass {
        if kind == AccessKind::Write {
            return ReqClass::Write;
        }
        if service.is_amb_hit() {
            return ReqClass::AmbHit;
        }
        match kind {
            AccessKind::DemandRead => ReqClass::Demand,
            AccessKind::SoftwarePrefetch => ReqClass::SwPrefetch,
            AccessKind::HardwarePrefetch => ReqClass::HwPrefetch,
            AccessKind::Write => unreachable!("handled above"),
        }
    }

    /// Dense index of this class (its position in [`REQ_CLASSES`]).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            ReqClass::Demand => 0,
            ReqClass::SwPrefetch => 1,
            ReqClass::HwPrefetch => 2,
            ReqClass::AmbHit => 3,
            ReqClass::Write => 4,
        }
    }

    /// True for the posted-write class.
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, ReqClass::Write)
    }

    /// Short machine-readable label (folded-stack frame / JSON key).
    pub const fn label(self) -> &'static str {
        match self {
            ReqClass::Demand => "demand",
            ReqClass::SwPrefetch => "swpf",
            ReqClass::HwPrefetch => "hwpf",
            ReqClass::AmbHit => "amb_hit",
            ReqClass::Write => "write",
        }
    }
}

impl fmt::Display for ReqClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Completion record for a read transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemResponse {
    /// The transaction this answers.
    pub id: RequestId,
    /// Issuing core.
    pub core: CoreId,
    /// Target cacheline.
    pub line: LineAddr,
    /// Kind of the original request.
    pub kind: AccessKind,
    /// Instant the critical data reached the memory controller.
    pub completion: Time,
    /// How the read was served.
    pub service: ServiceKind,
    /// True when the northbound data frame was corrupted and the
    /// transfer was dropped instead of retried (prefetch frames under
    /// fault injection): the line must not be cached.
    pub dropped: bool,
    /// Per-stage latency attribution; sums to `completion − arrival`.
    pub stages: StageBreakdown,
}

impl MemResponse {
    /// Read latency as observed at the controller.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `completion` precedes `arrival`.
    pub fn latency(&self, arrival: Time) -> crate::time::Dur {
        debug_assert!(self.completion >= arrival);
        self.completion - arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn access_kind_read_classification() {
        assert!(AccessKind::DemandRead.is_read());
        assert!(AccessKind::SoftwarePrefetch.is_read());
        assert!(!AccessKind::Write.is_read());
    }

    #[test]
    fn response_latency_is_completion_minus_arrival() {
        let resp = MemResponse {
            id: RequestId(1),
            core: CoreId(0),
            line: LineAddr::new(5),
            kind: AccessKind::DemandRead,
            completion: Time::from_ns(100),
            service: ServiceKind::DramAccess,
            dropped: false,
            stages: StageBreakdown::ZERO,
        };
        assert_eq!(resp.latency(Time::from_ns(37)), Dur::from_ns(63));
    }

    #[test]
    fn stage_indices_match_order() {
        for (i, s) in STAGES.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        for (i, c) in REQ_CLASSES.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn stamper_sums_exactly_to_span() {
        let mut st = StageBreakdown::stamper(Time::from_ns(10));
        st.to(Stage::CtrlQueue, Time::from_ns(14));
        st.to(Stage::SouthLink, Time::from_ns(19));
        // An out-of-order boundary charges zero instead of underflowing.
        st.to(Stage::AmbProc, Time::from_ns(15));
        st.to(Stage::DramCas, Time::from_ns(40));
        let b = st.finish();
        assert_eq!(b.get(Stage::CtrlQueue), Dur::from_ns(4));
        assert_eq!(b.get(Stage::SouthLink), Dur::from_ns(5));
        assert_eq!(b.get(Stage::AmbProc), Dur::ZERO);
        assert_eq!(b.get(Stage::DramCas), Dur::from_ns(21));
        assert_eq!(b.total(), Dur::from_ns(30));
        assert_eq!(b.dram_total(), Dur::from_ns(21));
    }

    #[test]
    fn req_class_amb_hit_takes_precedence() {
        assert_eq!(
            ReqClass::of(AccessKind::DemandRead, ServiceKind::AmbCacheHit),
            ReqClass::AmbHit
        );
        assert_eq!(
            ReqClass::of(AccessKind::DemandRead, ServiceKind::DramAccessWithPrefetch),
            ReqClass::Demand
        );
        assert_eq!(
            ReqClass::of(AccessKind::SoftwarePrefetch, ServiceKind::DramAccess),
            ReqClass::SwPrefetch
        );
        assert_eq!(
            ReqClass::of(AccessKind::HardwarePrefetch, ServiceKind::RowBufferHit),
            ReqClass::HwPrefetch
        );
    }

    #[test]
    fn req_class_writes_have_their_own_class() {
        for service in [
            ServiceKind::DramAccess,
            ServiceKind::RowBufferHit,
            ServiceKind::AmbCacheHit,
        ] {
            assert_eq!(ReqClass::of(AccessKind::Write, service), ReqClass::Write);
        }
        assert!(ReqClass::Write.is_write());
        assert_eq!(ReqClass::Write.index(), ReqClass::COUNT - 1);
        assert_eq!(ReqClass::Write.label(), "write");
        for class in REQ_CLASSES {
            assert_eq!(class.is_write(), class == ReqClass::Write);
        }
    }

    #[test]
    fn service_kind_hit_classification() {
        assert!(ServiceKind::AmbCacheHit.is_amb_hit());
        assert!(!ServiceKind::DramAccess.is_amb_hit());
        assert!(!ServiceKind::DramAccessWithPrefetch.is_amb_hit());
        assert!(!ServiceKind::RowBufferHit.is_amb_hit());
    }

    #[test]
    fn request_display_mentions_all_parts() {
        let req = MemRequest::new(
            RequestId(7),
            CoreId(2),
            AccessKind::Write,
            LineAddr::new(9),
            Time::from_ns(1),
        );
        let s = format!("{req}");
        assert!(s.contains("req#7"));
        assert!(s.contains("write"));
        assert!(s.contains("core2"));
    }
}
