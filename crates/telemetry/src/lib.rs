//! Telemetry for the FB-DIMM simulator: metric registry, epoch
//! time-series sampler, and cycle-level Chrome-trace event tracer.
//!
//! The simulator's hot paths keep their plain accumulators; this crate
//! is the *observability* layer layered on top:
//!
//! - [`MetricRegistry`] — named counters / gauges / latency
//!   accumulators under hierarchical dot paths such as
//!   `chan0.dimm2.bank5.act_count` or `amb.prefetch.hits`.
//! - [`EpochSampler`] — snapshots every registered metric each epoch of
//!   simulated time into an in-memory time-series, exportable as CSV or
//!   JSON.
//! - [`Tracer`] — southbound/northbound frame slots, DRAM commands,
//!   AMB hits, and power-mode transitions as Chrome Trace Event Format
//!   JSON, loadable in Perfetto (one track per channel / DIMM lane).
//! - [`hist`] — log-bucketed latency histograms and the
//!   stage × request-class latency-attribution profile behind
//!   `fbdsim profile`, with folded-stack (flamegraph) and JSON
//!   exporters.
//! - [`json`] — the dependency-free JSON value/writer/parser the
//!   exporters are built on.
//!
//! Everything is opt-in: a [`Telemetry`] built from the default
//! [`TelemetryConfig`] allocates no sampler and no tracer, and the
//! simulator's only obligation is an `is_on()` branch at emission
//! sites.
//!
//! # Examples
//!
//! ```
//! use fbd_telemetry::{Telemetry, TelemetryConfig};
//! use fbd_types::time::{Dur, Time};
//!
//! let mut tel = Telemetry::new(&TelemetryConfig {
//!     sample_interval: Some(Dur::from_ns(1000)),
//!     trace: true,
//! });
//! let acts = tel.registry.counter("chan0.acts");
//! tel.registry.add(acts, 1);
//! if let Some(tracer) = tel.tracer.as_mut() {
//!     tracer.complete("ACT", "dram", 0, 10, Time::from_ns(5), Dur::from_ns(12), vec![]);
//! }
//! tel.finish(Time::from_ns(1500));
//! assert_eq!(tel.sampler.unwrap().rows().len(), 1);
//! ```

pub mod hist;
pub mod json;
pub mod registry;
pub mod sampler;
pub mod trace;

pub use hist::{LogHistogram, StageProfile};
pub use json::Json;
pub use registry::{MetricId, MetricKind, MetricRegistry, MetricValue};
pub use sampler::{EpochSampler, SampleRow};
pub use trace::{tid_bank, tid_dimm, tid_power, Tracer, PID_SYSTEM, TID_NORTH, TID_SOUTH};

use fbd_types::time::{Dur, Time};

/// What to collect during a run. The default collects nothing beyond
/// the (always-on, near-free) metric registry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Snapshot all metrics every this much simulated time.
    pub sample_interval: Option<Dur>,
    /// Record cycle-level events for Chrome-trace export.
    pub trace: bool,
}

impl TelemetryConfig {
    /// True when any collector beyond the registry is enabled.
    pub fn any_enabled(&self) -> bool {
        self.sample_interval.is_some() || self.trace
    }
}

/// Per-run telemetry state: the registry plus optional collectors.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    pub registry: MetricRegistry,
    pub sampler: Option<EpochSampler>,
    pub tracer: Option<Tracer>,
}

impl Telemetry {
    /// Builds telemetry for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.sample_interval` is `Some(Dur::ZERO)`
    /// (see [`EpochSampler::new`]).
    pub fn new(config: &TelemetryConfig) -> Telemetry {
        Telemetry {
            registry: MetricRegistry::new(),
            sampler: config.sample_interval.map(EpochSampler::new),
            tracer: config.trace.then(Tracer::new),
        }
    }

    /// Telemetry that collects nothing beyond the registry.
    pub fn off() -> Telemetry {
        Telemetry::default()
    }

    /// True when the event tracer is active — emission sites branch on
    /// this before doing any formatting work.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// When the next epoch snapshot is due ([`Time::NEVER`] if sampling
    /// is off) — the event loop uses this to schedule sample events.
    pub fn next_sample_due(&self) -> Time {
        self.sampler
            .as_ref()
            .map_or(Time::NEVER, EpochSampler::next_due)
    }

    /// Takes an epoch snapshot if sampling is enabled.
    pub fn sample(&mut self, now: Time) {
        if let Some(sampler) = self.sampler.as_mut() {
            sampler.sample(now, &self.registry);
        }
    }

    /// Ends the run at `end`: flushes the final partial epoch.
    pub fn finish(&mut self, end: Time) {
        if let Some(sampler) = self.sampler.as_mut() {
            sampler.finish(end, &self.registry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_collects_nothing() {
        let tel = Telemetry::new(&TelemetryConfig::default());
        assert!(!TelemetryConfig::default().any_enabled());
        assert!(tel.sampler.is_none());
        assert!(tel.tracer.is_none());
        assert!(!tel.tracing());
        assert_eq!(tel.next_sample_due(), Time::NEVER);
    }

    #[test]
    fn sampling_lifecycle() {
        let mut tel = Telemetry::new(&TelemetryConfig {
            sample_interval: Some(Dur::from_ns(50)),
            trace: false,
        });
        let c = tel.registry.counter("reads");
        assert_eq!(tel.next_sample_due(), Time::from_ns(50));

        tel.registry.add(c, 2);
        tel.sample(Time::from_ns(50));
        tel.registry.add(c, 1);
        tel.finish(Time::from_ns(75));

        let rows = tel.sampler.as_ref().unwrap().rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].values, vec![3.0]);
    }
}
