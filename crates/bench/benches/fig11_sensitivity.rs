//! Figure 11: sensitivity of AMB-prefetching performance to the region
//! size (#CL), prefetch-buffer size and set associativity, normalized to
//! the default setting (4 CL, 64 entries, fully associative).
//!
//! Expected shape (paper §5.3): 1–2 cores prefer larger K; 4 CL is best
//! for 4–8 cores; 32–128 entries perform within a few percent; two-way
//! associativity reaches ≥98% of fully associative, direct mapping only
//! 87–95%.

use fbd_bench::*;
use fbd_types::config::Associativity;

fn main() {
    let exp = fbd_bench::experiment();
    banner(
        "Figure 11",
        "sensitivity to #CL, buffer size, associativity",
        &exp,
    );

    let points: Vec<(String, u32, u32, Associativity)> = vec![
        ("#CL=2".into(), 2, 64, Associativity::Full),
        ("#CL=4 (default)".into(), 4, 64, Associativity::Full),
        ("#CL=8".into(), 8, 64, Associativity::Full),
        ("#entry=32".into(), 4, 32, Associativity::Full),
        ("#entry=128".into(), 4, 128, Associativity::Full),
        ("Set=1(direct)".into(), 4, 64, Associativity::Direct),
        ("Set=2".into(), 4, 64, Associativity::Ways(2)),
        ("Set=4".into(), 4, 64, Associativity::Ways(4)),
    ];
    let refs = references(Variant::Ddr2, &exp);

    let mut rows = vec![{
        let mut h = vec!["config".to_string()];
        h.extend(workload_groups().iter().map(|(g, _)| g.to_string()));
        h
    }];
    let mut table: Vec<Vec<String>> = points.iter().map(|(l, _, _, _)| vec![l.clone()]).collect();
    let grouped = run_grouped(
        |cores| {
            points
                .iter()
                .map(|(label, k, e, a)| (label.clone(), ap_system(cores, *k, *e, *a)))
                .collect()
        },
        &exp,
    );
    for (_, workloads, results) in grouped {
        let avg = |label: &str| {
            let v: Vec<f64> = workloads
                .iter()
                .map(|w| {
                    results
                        .iter()
                        .find(|((c, n), _)| c == label && n == w.name())
                        .map(|(_, r)| speedup(w, r, &refs))
                        .expect("run")
                })
                .collect();
            mean(&v)
        };
        let default = avg("#CL=4 (default)");
        for (i, (label, _, _, _)) in points.iter().enumerate() {
            table[i].push(f3(avg(label) / default));
        }
    }
    rows.extend(table);
    emit_table("fig11_sensitivity", &rows);
    println!();
    println!("paper: all normalized to #CL=4/64-entry/full; direct mapping 95.3/90.5/87.4/87.0%, two-way ≥98%");
}
