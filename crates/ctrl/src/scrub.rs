//! Patrol scrubbing: rate-limited background read-verify-rewrite
//! sweeps over recently touched lines.
//!
//! Scrubbing is the repair half of the silent-corruption story: a CRC
//! escape leaves a line poisoned in DRAM with nobody the wiser, and
//! only a background sweep (or an overwrite) can make it clean again
//! before a demand read consumes it. The policy here decides *which*
//! line to verify and *when*; the memory system executes the sweep as
//! real traffic (a read, plus a rewrite when the line turns out
//! poisoned) through the ordinary channel datapath, so its bandwidth
//! and energy costs are modeled rather than assumed free.
//!
//! Policies are deliberately opportunistic: the controller polls them
//! only at idle decision points, so scrub traffic never displaces a
//! schedulable demand access and never creates wake-up events of its
//! own. A saturated channel therefore scrubs rarely — which is the
//! real trade-off patrol scrubbing makes.

use fbd_types::config::MemoryConfig;
use fbd_types::time::{Dur, Time};
use fbd_types::LineAddr;

/// A pluggable background-scrub policy (published by name through
/// [`crate::scrub_policies`]).
pub trait ScrubPolicy: Send + std::fmt::Debug {
    /// Notes a line the controller just serviced on `channel` — the
    /// candidate pool patrol sweeps walk. Called on the hot path, so
    /// implementations must be O(1) and allocation-free after warmup.
    fn observe(&mut self, channel: u32, line: LineAddr);

    /// Asks for a line to scrub on `channel` at an idle decision point.
    /// `None` means no sweep is due (rate limit, or nothing observed
    /// yet). A returned line counts as dispatched: the policy advances
    /// its cursor and rate-limit clock.
    fn next_scrub(&mut self, channel: u32, now: Time) -> Option<LineAddr>;
}

/// A named, registerable [`ScrubPolicy`] factory (see
/// [`crate::scrub_policies`] for the registry).
pub trait ScrubSpec: Send + Sync + std::fmt::Debug {
    /// Stable registry name (e.g. `patrol`).
    fn name(&self) -> &'static str;
    /// One-line human description for listings.
    fn description(&self) -> &'static str;
    /// Builds the policy instance for `cfg` (scrub interval, channel
    /// count, …).
    fn build(&self, cfg: &MemoryConfig) -> Box<dyn ScrubPolicy>;
}

/// The do-nothing policy: scrubbing disabled (the default).
#[derive(Clone, Copy, Debug)]
pub struct NoScrub;

impl ScrubPolicy for NoScrub {
    fn observe(&mut self, _channel: u32, _line: LineAddr) {}
    fn next_scrub(&mut self, _channel: u32, _now: Time) -> Option<LineAddr> {
        None
    }
}

/// Registry entry for [`NoScrub`].
#[derive(Debug)]
pub struct NoScrubSpec;

impl ScrubSpec for NoScrubSpec {
    fn name(&self) -> &'static str {
        "none"
    }
    fn description(&self) -> &'static str {
        "no background scrubbing (the default)"
    }
    fn build(&self, _cfg: &MemoryConfig) -> Box<dyn ScrubPolicy> {
        Box::new(NoScrub)
    }
}

/// Lines each channel's patrol ring remembers. Old entries are
/// overwritten FIFO; a line evicted before its sweep simply waits for
/// its next observation (patrol is best-effort by construction).
const PATROL_RING: usize = 1024;

/// Round-robin patrol over recently touched lines, one sweep per
/// channel per `scrub_interval_ns` at most.
///
/// The ring deliberately tracks *observed* lines rather than walking
/// the whole address space: a full-capacity walk at DIMM scale would
/// take longer than any simulated window, while the recently touched
/// set is exactly where poisoned lines (which arrive via real
/// transfers) live.
#[derive(Clone, Debug)]
pub struct PatrolScrub {
    interval: Dur,
    channels: Vec<PatrolChannel>,
}

#[derive(Clone, Debug)]
struct PatrolChannel {
    ring: Vec<LineAddr>,
    /// Next ring slot `observe` overwrites.
    write: usize,
    /// Next ring slot `next_scrub` sweeps.
    sweep: usize,
    /// When the previous sweep was dispatched (rate-limit clock).
    last: Option<Time>,
}

impl PatrolScrub {
    /// Creates the patrol policy for `channels` channels with at most
    /// one sweep per channel per `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero (validated at config level).
    pub fn new(channels: u32, interval: Dur) -> PatrolScrub {
        assert!(!interval.is_zero(), "scrub interval must be non-zero");
        PatrolScrub {
            interval,
            channels: (0..channels)
                .map(|_| PatrolChannel {
                    ring: Vec::with_capacity(PATROL_RING),
                    write: 0,
                    sweep: 0,
                    last: None,
                })
                .collect(),
        }
    }
}

impl ScrubPolicy for PatrolScrub {
    fn observe(&mut self, channel: u32, line: LineAddr) {
        let ch = &mut self.channels[channel as usize];
        if ch.ring.len() < PATROL_RING {
            ch.ring.push(line);
        } else {
            ch.ring[ch.write] = line;
            ch.write = (ch.write + 1) % PATROL_RING;
        }
    }

    fn next_scrub(&mut self, channel: u32, now: Time) -> Option<LineAddr> {
        let interval = self.interval;
        let ch = &mut self.channels[channel as usize];
        if ch.ring.is_empty() {
            return None;
        }
        if let Some(last) = ch.last {
            if now.saturating_since(last) < interval {
                return None;
            }
        }
        let line = ch.ring[ch.sweep % ch.ring.len()];
        ch.sweep = (ch.sweep + 1) % PATROL_RING.max(ch.ring.len());
        ch.last = Some(now);
        Some(line)
    }
}

/// Registry entry for [`PatrolScrub`].
#[derive(Debug)]
pub struct PatrolSpec;

impl ScrubSpec for PatrolSpec {
    fn name(&self) -> &'static str {
        "patrol"
    }
    fn description(&self) -> &'static str {
        "round-robin read-verify-rewrite sweeps over touched lines, rate-limited per channel"
    }
    fn build(&self, cfg: &MemoryConfig) -> Box<dyn ScrubPolicy> {
        Box::new(PatrolScrub::new(
            cfg.logical_channels,
            Dur::from_ns(cfg.faults.scrub_interval_ns),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_scrub_never_sweeps() {
        let mut p = NoScrub;
        p.observe(0, LineAddr::new(7));
        assert_eq!(p.next_scrub(0, Time::from_ns(1_000_000)), None);
    }

    #[test]
    fn patrol_waits_for_an_observation() {
        let mut p = PatrolScrub::new(2, Dur::from_ns(100));
        assert_eq!(p.next_scrub(0, Time::from_ns(500)), None);
        p.observe(0, LineAddr::new(42));
        assert_eq!(p.next_scrub(0, Time::from_ns(500)), Some(LineAddr::new(42)));
    }

    #[test]
    fn patrol_rate_limits_per_channel() {
        let mut p = PatrolScrub::new(2, Dur::from_ns(100));
        p.observe(0, LineAddr::new(1));
        p.observe(1, LineAddr::new(2));
        assert!(p.next_scrub(0, Time::from_ns(10)).is_some());
        // Channel 0 just swept: due again only after the interval.
        assert_eq!(p.next_scrub(0, Time::from_ns(50)), None);
        assert!(p.next_scrub(0, Time::from_ns(110)).is_some());
        // Channel 1's clock is independent.
        assert!(p.next_scrub(1, Time::from_ns(50)).is_some());
    }

    #[test]
    fn patrol_round_robins_the_ring() {
        let mut p = PatrolScrub::new(1, Dur::from_ns(1));
        for l in [3u64, 5, 9] {
            p.observe(0, LineAddr::new(l));
        }
        let mut seen = Vec::new();
        for i in 0..6u64 {
            seen.push(p.next_scrub(0, Time::from_ns(10 + i * 10)).unwrap());
        }
        let want: Vec<LineAddr> = [3u64, 5, 9, 3, 5, 9].map(LineAddr::new).into();
        assert_eq!(seen, want);
    }

    #[test]
    fn patrol_ring_overwrites_oldest_at_capacity() {
        let mut p = PatrolScrub::new(1, Dur::from_ns(1));
        for l in 0..(PATROL_RING as u64 + 3) {
            p.observe(0, LineAddr::new(l));
        }
        // Ring is full; slots 0..3 now hold the newest three lines.
        assert_eq!(p.channels[0].ring.len(), PATROL_RING);
        assert_eq!(p.channels[0].ring[0], LineAddr::new(PATROL_RING as u64));
        assert_eq!(p.channels[0].ring[3], LineAddr::new(3));
    }
}
