//! The Advanced Memory Buffer: prefetch buffer and per-DIMM engine.
//!
//! This crate implements the DIMM-side half of the paper's proposal: the
//! AMB cache ([`PrefetchBuffer`]) holding prefetched cachelines with FIFO
//! replacement, and the AMB engine ([`AmbDimm`]) that executes
//! single-line reads, K-line group fetches and writes against the DRAM
//! devices of one DIMM.
//!
//! # Examples
//!
//! A group fetch costs one activation and K column accesses, and the
//! demanded line is not delayed by the prefetched ones:
//!
//! ```
//! use fbd_amb::AmbDimm;
//! use fbd_types::config::DramTimings;
//! use fbd_types::time::{Dur, Time};
//!
//! let mut dimm = AmbDimm::new(4, DramTimings::ddr2_table2(), Dur::from_ns(3), Dur::from_ns(6), true);
//! let group = dimm.fetch_group(0, 42, 4, Time::ZERO);
//! assert_eq!(dimm.ops().act_pre, 1);
//! assert_eq!(dimm.ops().col_reads, 4);
//! assert_eq!(group.demanded_ready, Time::from_ns(30)); // tRCD + tCL
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buffer;
pub mod engine;

pub use buffer::PrefetchBuffer;
pub use engine::{AmbDimm, GroupFetchOutcome, ReadOutcome, WriteOutcome};

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use fbd_types::config::{AmbPrefetchConfig, Associativity, Replacement};
    use fbd_types::LineAddr;
    use proptest::prelude::*;
    use std::collections::HashSet;

    proptest! {
        /// Under any mix of inserts, hits and invalidates, the buffer
        /// never exceeds capacity, never holds duplicates, and answers
        /// `contains` consistently with the operation history.
        #[test]
        fn buffer_capacity_and_consistency(
            ops in proptest::collection::vec((0u8..3, 0u64..64), 1..300),
            entries_log in 2u32..6,
            ways_sel in 0u8..3,
        ) {
            let entries = 1u32 << entries_log;
            let associativity = match ways_sel {
                0 => Associativity::Direct,
                1 => Associativity::Ways(2),
                _ => Associativity::Full,
            };
            let cfg = AmbPrefetchConfig {
                cache_lines: entries,
                associativity,
                replacement: Replacement::Fifo,
                ..AmbPrefetchConfig::paper_default()
            };
            let mut buf = PrefetchBuffer::new(&cfg);
            let mut model: HashSet<u64> = HashSet::new();
            for (op, line) in ops {
                let l = LineAddr::new(line);
                match op {
                    0 => {
                        let evicted = buf.insert(l);
                        model.insert(line);
                        if let Some(e) = evicted {
                            model.remove(&e.as_u64());
                        }
                    }
                    1 => {
                        let hit = buf.on_hit(l);
                        prop_assert_eq!(hit, model.contains(&line));
                    }
                    _ => {
                        let was = buf.invalidate(l);
                        prop_assert_eq!(was, model.remove(&line));
                    }
                }
                prop_assert!(buf.len() <= buf.capacity());
                prop_assert_eq!(buf.len(), model.len());
            }
        }
    }
}
