//! Figure 8: AMB-prefetch coverage and efficiency for varying region
//! size (#CL), buffer size (#entry) and set associativity.
//!
//! Coverage = prefetch hits / reads; efficiency = prefetch hits / lines
//! prefetched. Expected shape (paper §5.2): ~50% coverage at the
//! 4-cacheline default (upper bound 75%); bigger/more-associative
//! buffers help both metrics; larger K raises coverage but lowers
//! efficiency.

use fbd_bench::*;
use fbd_types::config::Associativity;

fn main() {
    let exp = fbd_bench::experiment();
    banner("Figure 8", "prefetch coverage and efficiency", &exp);

    // The paper's grid: #CL ∈ {2,4,8} at 64 entries full-assoc;
    // #entry ∈ {32,64,128} at 4 CL full-assoc; assoc ∈ {1,2,4,full}.
    let points: Vec<(String, u32, u32, Associativity)> = vec![
        ("#CL=2".into(), 2, 64, Associativity::Full),
        ("#CL=4".into(), 4, 64, Associativity::Full),
        ("#CL=8".into(), 8, 64, Associativity::Full),
        ("#entry=32".into(), 4, 32, Associativity::Full),
        ("#entry=64".into(), 4, 64, Associativity::Full),
        ("#entry=128".into(), 4, 128, Associativity::Full),
        ("Set=1(direct)".into(), 4, 64, Associativity::Direct),
        ("Set=2".into(), 4, 64, Associativity::Ways(2)),
        ("Set=4".into(), 4, 64, Associativity::Ways(4)),
        ("Set=Full".into(), 4, 64, Associativity::Full),
    ];

    let grouped = run_grouped(
        |cores| {
            points
                .iter()
                .map(|(label, k, entries, assoc)| {
                    (label.clone(), ap_system(cores, *k, *entries, *assoc))
                })
                .collect()
        },
        &exp,
    );
    for (group, workloads, results) in grouped {
        let mut rows = vec![vec![
            group.to_string(),
            "coverage".to_string(),
            "efficiency".to_string(),
        ]];
        for (label, _, _, _) in &points {
            let covs: Vec<f64> = workloads
                .iter()
                .map(|w| {
                    results
                        .iter()
                        .find(|((c, n), _)| c == label && n == w.name())
                        .map(|(_, r)| r.mem.prefetch_coverage())
                        .expect("run")
                })
                .collect();
            let effs: Vec<f64> = workloads
                .iter()
                .map(|w| {
                    results
                        .iter()
                        .find(|((c, n), _)| c == label && n == w.name())
                        .map(|(_, r)| r.mem.prefetch_efficiency())
                        .expect("run")
                })
                .collect();
            rows.push(vec![label.clone(), f3(mean(&covs)), f3(mean(&effs))]);
        }
        emit_table(&format!("fig08_coverage_efficiency_{group}"), &rows);
        println!();
    }
    println!("paper: ~50% coverage at the 4-CL default (bound 75%); larger K raises coverage, lowers efficiency");
}
