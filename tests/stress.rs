//! Stress and failure-injection tests: pathological access patterns
//! must degrade gracefully (correct accounting, bounded behaviour), not
//! deadlock or corrupt statistics.

use fbd_core::experiment::{ExperimentConfig, Warmup};
use fbd_core::{RunResult, RunSpec, System};
use fbd_cpu::{OpKind, TraceOp, TraceSource};
use fbd_types::config::{MemoryConfig, SystemConfig};
use fbd_types::time::Dur;
use fbd_types::LineAddr;
use fbd_workloads::Workload;

fn run(cfg: SystemConfig, w: &Workload, exp: ExperimentConfig) -> RunResult {
    RunSpec::new(cfg)
        .with_workload(w.clone())
        .experiment(exp)
        .run()
}

/// A trace that hammers lines mapping to one single DRAM bank.
#[derive(Debug)]
struct HotspotTrace {
    next: u64,
    stride: u64,
    remaining: u64,
}

impl TraceSource for HotspotTrace {
    fn next_op(&mut self) -> Option<TraceOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let line = self.next;
        self.next += self.stride;
        Some(TraceOp {
            gap: 2,
            kind: OpKind::Load,
            line: LineAddr::new(line),
        })
    }

    fn time_per_instr(&self) -> Dur {
        Dur::from_ps(125)
    }

    fn name(&self) -> &str {
        "hotspot"
    }
}

/// A trace that is only stores (write-allocate + writeback pressure).
#[derive(Debug)]
struct StoreFlood {
    next: u64,
    remaining: u64,
}

impl TraceSource for StoreFlood {
    fn next_op(&mut self) -> Option<TraceOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.next += 1;
        Some(TraceOp {
            gap: 1,
            kind: OpKind::Store,
            line: LineAddr::new(self.next * 3),
        })
    }

    fn time_per_instr(&self) -> Dur {
        Dur::from_ps(125)
    }

    fn name(&self) -> &str {
        "store-flood"
    }
}

#[test]
fn single_bank_hotspot_is_trc_bound_not_deadlocked() {
    // Under cacheline interleaving, consecutive groups cycle over
    // 2 ch × 4 dimms × 4 banks = 32 banks, and 128 lines fill a row;
    // stride 32*128 = 4096 lines revisits the same bank, new row.
    let cfg = SystemConfig::paper_default(1);
    let trace = Box::new(HotspotTrace {
        next: 0,
        stride: 4096,
        remaining: 3_000,
    });
    let result = System::new(&cfg, vec![trace], 9_000).run();
    // Every access conflicts: the bank's tRC (54 ns) bounds throughput.
    // 3000 back-to-back conflicting accesses ≥ ~2999 × 54 ns of DRAM time.
    assert!(
        result.elapsed >= Dur::from_ns(54) * 2_900,
        "{:?}",
        result.elapsed
    );
    assert_eq!(result.mem.demand_reads, 3_000);
    // And the average latency reflects heavy queueing, bounded by the
    // transaction queue + MSHR depth (not unbounded).
    assert!(result.avg_read_latency_ns() > 100.0);
    assert!(result.avg_read_latency_ns() < 5_000.0);
}

#[test]
fn store_flood_generates_writebacks_and_completes() {
    let cfg = SystemConfig::paper_default(1);
    // 140k ops: enough to fill the 64k-line L2 and keep evicting.
    let trace = Box::new(StoreFlood {
        next: 0,
        remaining: 140_000,
    });
    let mut sys = System::new(&cfg, vec![trace], 80_000);
    sys.warm(70_000); // fill the L2 with dirty lines first
    let result = sys.run();
    // Stores are non-blocking, so commit finishes at the base rate; the
    // memory system must still have served a stream of write-allocate
    // reads AND pushed dirty victims back out at a comparable rate.
    assert!(
        result.mem.demand_reads > 3_000,
        "{}",
        result.mem.demand_reads
    );
    assert!(
        result.mem.writes * 2 > result.mem.demand_reads,
        "writebacks missing: {} writes vs {} reads",
        result.mem.writes,
        result.mem.demand_reads
    );
}

#[test]
fn request_accounting_is_conserved() {
    // Demand reads at the controller equal L2 misses from the cores
    // (no requests lost in the queue/spill path, none double-counted).
    let exp = ExperimentConfig {
        seed: 7,
        budget: 120_000,
        warmup: Warmup::None,
    };
    let w = Workload::new("1C-equake", &["equake"]);
    let r = run(SystemConfig::paper_default(1), &w, exp);
    let issued = r.cores[0].l2_misses;
    // Some requests may still be in flight at the stop instant, but the
    // controller can never have served more than were issued, and the
    // gap is bounded by the outstanding window.
    assert!(r.mem.total_reads() <= issued);
    assert!(
        issued - r.mem.total_reads() <= 64 + 64,
        "{} vs {}",
        issued,
        r.mem.total_reads()
    );
}

#[test]
fn amb_hit_latency_never_below_33ns() {
    let exp = ExperimentConfig {
        seed: 11,
        budget: 60_000,
        ..Default::default()
    };
    let mut cfg = SystemConfig::paper_default(1);
    cfg.mem = MemoryConfig::fbdimm_with_prefetch();
    let w = Workload::new("1C-swim", &["swim"]);
    let r = run(cfg, &w, exp);
    // The fastest possible read is the 33 ns idle AMB hit; the
    // histogram's lowest occupied bucket must respect it.
    let p001 = r
        .mem
        .read_latency_hist
        .percentile(0.001)
        .expect("reads completed");
    assert!(
        p001 >= Dur::from_ns(32),
        "fastest read {p001} beats physics"
    );
}

#[test]
fn deep_queue_spill_preserves_all_requests() {
    // Tiny transaction queue forces constant spilling; nothing is lost.
    let mut cfg = SystemConfig::paper_default(2);
    cfg.mem.queue_capacity = 4;
    let exp = ExperimentConfig {
        seed: 3,
        budget: 40_000,
        warmup: Warmup::None,
    };
    let w = fbd_workloads::two_core_workloads().remove(0);
    let r = run(cfg, &w, exp);
    assert!(r.mem.demand_reads > 300);
    assert!(r.cores.iter().any(|c| c.instructions == 40_000));
}

#[test]
fn zero_memory_workload_finishes_by_projection() {
    // A trace with no memory operations at all: the run must end at the
    // projected finish time, not deadlock.
    #[derive(Debug)]
    struct Empty;
    impl TraceSource for Empty {
        fn next_op(&mut self) -> Option<TraceOp> {
            None
        }
        fn time_per_instr(&self) -> Dur {
            Dur::from_ps(125)
        }
        fn name(&self) -> &str {
            "empty"
        }
    }
    let cfg = SystemConfig::paper_default(1);
    let r = System::new(&cfg, vec![Box::new(Empty)], 1_000).run();
    assert_eq!(r.cores[0].instructions, 1_000);
    // 1000 instructions at 125 ps each.
    assert_eq!(r.elapsed, Dur::from_ps(125 * 1_000));
    assert_eq!(r.mem.total_reads(), 0);
}

#[test]
fn refresh_costs_a_little_throughput_and_counts_ops() {
    let w = Workload::new("1C-swim", &["swim"]);
    let exp = ExperimentConfig {
        seed: 5,
        budget: 80_000,
        ..Default::default()
    };
    let base_cfg = SystemConfig::paper_default(1);
    let mut refresh_cfg = base_cfg;
    refresh_cfg.mem.refresh = fbd_types::config::RefreshConfig::ddr2_1gb();

    let base = run(base_cfg, &w, exp);
    let with_refresh = run(refresh_cfg, &w, exp);

    assert_eq!(
        base.mem.dram_ops.refreshes, 0,
        "paper config has no refresh"
    );
    assert!(
        with_refresh.mem.dram_ops.refreshes > 0,
        "refreshes must occur"
    );
    // Refresh overhead is tRFC/tREFI ≈ 1.6% of each DIMM's time: a small
    // but strictly non-negative slowdown.
    let ratio = with_refresh.cores[0].ipc() / base.cores[0].ipc();
    assert!(ratio <= 1.001, "refresh cannot speed things up: {ratio:.4}");
    assert!(
        ratio > 0.90,
        "refresh overhead implausibly large: {ratio:.4}"
    );
    // Roughly one refresh per DIMM per tREFI of elapsed time.
    let expected = (with_refresh.elapsed.as_ns_f64() / 7_800.0) * 8.0; // 2 ch × 4 dimms
    let got = with_refresh.mem.dram_ops.refreshes as f64;
    assert!(
        (got - expected).abs() / expected < 0.3,
        "refresh count {got} far from expected {expected:.0}"
    );
}

#[test]
fn two_rank_dimms_run_and_add_bank_parallelism() {
    let w = Workload::new("1C-swim", &["swim"]);
    let exp = ExperimentConfig {
        seed: 9,
        budget: 60_000,
        ..Default::default()
    };
    let one = SystemConfig::paper_default(1);
    let mut two = one;
    two.mem.ranks_per_dimm = 2;
    let r1 = run(one, &w, exp);
    let r2 = run(two, &w, exp);
    // More banks behind the same channels: never slower, usually faster
    // (fewer bank conflicts).
    assert!(
        r2.cores[0].ipc() >= r1.cores[0].ipc() * 0.99,
        "2 ranks slower than 1: {:.3} vs {:.3}",
        r2.cores[0].ipc(),
        r1.cores[0].ipc()
    );
}
