//! Diagnostic: peak achievable bandwidth per system under a pure miss flood.
use fbd_core::RunSpec;
use fbd_types::config::MemoryConfig;

fn main() {
    let w8 = fbd_workloads::eight_core_workloads().remove(0);
    for (name, mem) in [
        ("DDR2", MemoryConfig::ddr2_default()),
        ("FBD", MemoryConfig::fbdimm_default()),
        ("FBD-AP", MemoryConfig::fbdimm_with_prefetch()),
    ] {
        let r = RunSpec::paper_default(8)
            .with_workload(w8.clone())
            .memory(mem)
            .seed(42)
            .budget(100_000)
            .run();
        println!(
            "{name}: bw={:.2}GB/s lat={:.1}ns reads={} writes={} act={} col={}",
            r.bandwidth_gbps(),
            r.avg_read_latency_ns(),
            r.mem.total_reads(),
            r.mem.writes,
            r.mem.dram_ops.act_pre,
            r.mem.dram_ops.col_total()
        );
    }
}
