//! The out-of-order core timing model.
//!
//! A first-order model of how an 8-issue OoO core (Table 1) converts
//! memory behaviour into runtime, in the tradition of trace-driven DRAM
//! studies:
//!
//! * instructions commit at a benchmark-specific base rate
//!   (`time_per_instr`) while no L2 miss blocks the ROB head;
//! * a demand-load L2 miss blocks commit when the commit cursor reaches
//!   it (*stall-on-use*), so independent misses inside the ROB window
//!   overlap — memory-level parallelism falls out naturally;
//! * the ROB bounds how far fetch may run ahead of commit, which bounds
//!   the number of misses that can overlap.
//!
//! Commit progress is computed analytically (piecewise-linear in time),
//! so the core costs O(1) per memory event regardless of instruction
//! count.

use std::collections::VecDeque;

use fbd_types::request::CoreId;
use fbd_types::time::{Dur, Time};
use fbd_types::LineAddr;

/// An in-flight demand load, in program order.
#[derive(Clone, Copy, Debug)]
struct PendingLoad {
    /// Absolute instruction index of the load.
    idx: u64,
    line: LineAddr,
    /// Fill-arrival time, once known.
    done: Option<Time>,
}

/// The commit/ROB engine of one core.
#[derive(Clone, Debug)]
pub struct OooCore {
    id: CoreId,
    tpi: Dur,
    rob: u64,
    budget: u64,
    /// Instruction index from which commit proceeds unobstructed...
    free_idx: u64,
    /// ...starting at this instant.
    free_time: Time,
    /// Demand-load misses in program order.
    blocking: VecDeque<PendingLoad>,
    /// Commit may not reach this instruction index: it has not been
    /// fetched yet (fetch is stalled on MSHR capacity). Maintained by
    /// the complex.
    fetch_barrier: Option<u64>,
}

impl OooCore {
    /// Creates a core that commits one instruction per `tpi` at best, has
    /// a `rob`-instruction reorder window, and finishes after `budget`
    /// committed instructions.
    ///
    /// # Panics
    ///
    /// Panics if `tpi` is zero or `rob`/`budget` are zero.
    pub fn new(id: CoreId, tpi: Dur, rob: u64, budget: u64) -> OooCore {
        assert!(!tpi.is_zero(), "time per instruction must be non-zero");
        assert!(rob > 0, "ROB must be non-empty");
        assert!(budget > 0, "instruction budget must be non-zero");
        OooCore {
            id,
            tpi,
            rob,
            budget,
            free_idx: 0,
            free_time: Time::ZERO,
            blocking: VecDeque::new(),
            fetch_barrier: None,
        }
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The instruction budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Instructions committed by instant `now`.
    pub fn commit_idx(&self, now: Time) -> u64 {
        // Between a load's retirement and `free_time` (one tpi later) the
        // retired load is the newest committed instruction.
        let mut idx = if now >= self.free_time {
            self.free_idx
                .saturating_add((now - self.free_time) / self.tpi)
        } else {
            self.free_idx.saturating_sub(1)
        };
        if let Some(front) = self.blocking.front() {
            idx = idx.min(front.idx);
        }
        if let Some(barrier) = self.fetch_barrier {
            idx = idx.min(barrier);
        }
        idx.min(self.budget)
    }

    /// Declares that the instruction at `idx` has not been fetched, so
    /// commit cannot reach it (`None` clears the barrier). Set by the
    /// complex while an operation waits for MSHR capacity.
    pub fn set_fetch_barrier(&mut self, idx: Option<u64>) {
        self.fetch_barrier = idx;
    }

    /// True once the budget has been committed.
    pub fn done(&self, now: Time) -> bool {
        self.commit_idx(now) >= self.budget
    }

    /// When the core will commit its budget, assuming no *new* blocking
    /// loads appear. `None` while an incomplete load blocks the path.
    pub fn projected_done_time(&self, now: Time) -> Option<Time> {
        if self.blocking.front().is_some_and(|l| l.idx < self.budget) {
            return None;
        }
        if self.fetch_barrier.is_some_and(|b| b < self.budget) {
            return None;
        }
        let t = if self.budget <= self.free_idx {
            self.free_time
        } else {
            self.free_time + self.tpi * (self.budget - self.free_idx)
        };
        Some(t.max(now))
    }

    /// Can an operation at absolute instruction index `idx` enter the
    /// ROB at `now`?
    pub fn can_fetch(&self, idx: u64, now: Time) -> bool {
        idx < self.commit_idx(now).saturating_add(self.rob)
    }

    /// Earliest instant an op at `idx` will fit in the ROB, assuming no
    /// further completions. `None` when an incomplete load blocks commit
    /// before the required point (the core must wait for a fill).
    pub fn fetch_ready_time(&self, idx: u64) -> Option<Time> {
        let target = (idx + 1).saturating_sub(self.rob);
        if target <= self.free_idx {
            return Some(self.free_time);
        }
        if self.blocking.front().is_some_and(|l| l.idx < target) {
            return None;
        }
        Some(self.free_time + self.tpi * (target - self.free_idx))
    }

    /// Registers a demand-load L2 miss at instruction `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of program order.
    pub fn push_blocking_load(&mut self, idx: u64, line: LineAddr) {
        assert!(
            self.blocking.back().is_none_or(|l| l.idx < idx) && idx >= self.free_idx,
            "loads must arrive in program order"
        );
        self.blocking.push_back(PendingLoad {
            idx,
            line,
            done: None,
        });
    }

    /// Marks every pending load on `line` as filled at `at` (misses to
    /// one line merge), then settles commit progress up to `at`.
    pub fn complete_line(&mut self, line: LineAddr, at: Time) {
        for l in &mut self.blocking {
            if l.line == line && l.done.is_none() {
                l.done = Some(at);
            }
        }
        self.settle(at);
    }

    /// Retires completed loads whose fill time has passed, advancing the
    /// free-commit point.
    pub fn settle(&mut self, now: Time) {
        while let Some(front) = self.blocking.front() {
            let Some(done) = front.done else { break };
            if done > now {
                break;
            }
            // Commit reaches the load...
            let reach = if front.idx <= self.free_idx {
                self.free_time
            } else {
                self.free_time + self.tpi * (front.idx - self.free_idx)
            };
            // ...and retires it once both commit and the fill arrive.
            let unblock = reach.max(done);
            self.free_idx = front.idx + 1;
            self.free_time = unblock + self.tpi;
            self.blocking.pop_front();
        }
    }

    /// Number of in-flight demand loads.
    pub fn blocking_loads(&self) -> usize {
        self.blocking.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TPI: Dur = Dur::from_ps(125); // base IPC 2 at 4 GHz

    fn core() -> OooCore {
        OooCore::new(CoreId(0), TPI, 196, 1_000_000)
    }

    #[test]
    fn unobstructed_commit_is_linear() {
        let c = core();
        assert_eq!(c.commit_idx(Time::ZERO), 0);
        assert_eq!(c.commit_idx(Time::from_ps(1_250)), 10);
        assert_eq!(c.commit_idx(Time::from_ns(125)), 1_000);
    }

    #[test]
    fn blocking_load_caps_commit() {
        let mut c = core();
        c.push_blocking_load(100, LineAddr::new(7));
        // Commit would reach 100 at 12.5 ns and stops there.
        assert_eq!(c.commit_idx(Time::from_ns(100)), 100);
        // Fill at 80 ns: load retires, commit resumes from 101 at 80 ns + tpi.
        c.complete_line(LineAddr::new(7), Time::from_ns(80));
        assert_eq!(c.commit_idx(Time::from_ns(80)), 100);
        let at = Time::from_ns(80) + TPI + TPI * 9;
        assert_eq!(c.commit_idx(at), 110);
    }

    #[test]
    fn fill_before_commit_reaches_load_is_free() {
        let mut c = core();
        c.push_blocking_load(1_000, LineAddr::new(7));
        // Fill arrives at 10 ns, commit reaches idx 1000 only at 125 µs...
        c.complete_line(LineAddr::new(7), Time::from_ns(10));
        // ...so the load costs nothing: commit stays linear.
        assert_eq!(c.commit_idx(Time::from_ps(125 * 2_000)), 2_000);
    }

    #[test]
    fn overlapping_misses_share_the_stall() {
        let mut c = core();
        c.push_blocking_load(10, LineAddr::new(1));
        c.push_blocking_load(11, LineAddr::new(2));
        // Both fill at 100 ns (overlapped service).
        c.complete_line(LineAddr::new(1), Time::from_ns(100));
        c.complete_line(LineAddr::new(2), Time::from_ns(100));
        // First retires at 100 ns (+tpi); second was already filled, so it
        // retires back-to-back rather than serializing another 100 ns.
        let t = Time::from_ns(100) + TPI * 2;
        assert_eq!(c.commit_idx(t), 12);
    }

    #[test]
    fn rob_bounds_fetch_distance() {
        let mut c = core();
        c.push_blocking_load(0, LineAddr::new(1));
        // Commit stuck at 0; ops inside the 196-window fetch, beyond not.
        assert!(c.can_fetch(195, Time::from_ns(1_000)));
        assert!(!c.can_fetch(196, Time::from_ns(1_000)));
        // Blocked until the fill: no timed wake possible.
        assert_eq!(c.fetch_ready_time(196), None);
        c.complete_line(LineAddr::new(1), Time::from_ns(50));
        assert!(c.can_fetch(196, Time::from_ns(50) + TPI));
    }

    #[test]
    fn fetch_ready_time_is_exact_without_blocking() {
        let c = core();
        // Op at idx 500 fits when commit reaches 305 = (500+1)-196,
        // i.e. at 305 * 125 ps.
        let t = c.fetch_ready_time(500).unwrap();
        assert_eq!(t, Time::from_ps(305 * 125));
        assert!(c.can_fetch(500, t));
        assert!(!c.can_fetch(500, t - Dur::from_ps(125)));
    }

    #[test]
    fn merged_loads_fill_together() {
        let mut c = core();
        c.push_blocking_load(5, LineAddr::new(9));
        c.push_blocking_load(6, LineAddr::new(9));
        c.complete_line(LineAddr::new(9), Time::from_ns(40));
        assert_eq!(c.blocking_loads(), 0);
    }

    #[test]
    fn budget_caps_commit_and_projects_finish() {
        let mut c = OooCore::new(CoreId(0), TPI, 196, 100);
        assert_eq!(c.commit_idx(Time::from_ns(1_000_000)), 100);
        assert!(c.done(Time::from_ps(125 * 100)));
        assert_eq!(
            c.projected_done_time(Time::ZERO),
            Some(Time::from_ps(125 * 100))
        );
        c.push_blocking_load(50, LineAddr::new(1));
        assert_eq!(c.projected_done_time(Time::ZERO), None);
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_load_registration_rejected() {
        let mut c = core();
        c.push_blocking_load(10, LineAddr::new(1));
        c.push_blocking_load(9, LineAddr::new(2));
    }
}
