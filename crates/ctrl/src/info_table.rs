//! The prefetch information table: the controller-resident tag half of
//! the AMB caches (paper §3.2, Figure 3).
//!
//! "The memory controller holds the tag part of the cache and the AMBs
//! hold the data part." The table mirrors each AMB cache's content so
//! the controller can decide — before sending any channel command —
//! whether a read will hit in the target DIMM's prefetch buffer.

use fbd_amb::PrefetchBuffer;
use fbd_types::config::MemoryConfig;
use fbd_types::LineAddr;

/// What a group-fetch fill did to an AMB cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FillOutcome {
    /// Lines written into the cache (duplicates refresh LRU and still
    /// count — they consumed fetch bandwidth).
    pub inserted: u64,
    /// Resident lines displaced to make room. Evictions of never-used
    /// lines are the waste the paper's efficiency metric exposes.
    pub evicted: u64,
}

/// Controller-side tags for every AMB cache in the system, indexed by
/// (logical channel, DIMM).
#[derive(Clone, Debug)]
pub struct PrefetchTable {
    buffers: Vec<PrefetchBuffer>,
    dimms_per_channel: u32,
}

impl PrefetchTable {
    /// Builds one tag buffer per (channel, DIMM).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: &MemoryConfig) -> PrefetchTable {
        let count = (cfg.logical_channels * cfg.dimms_per_channel) as usize;
        PrefetchTable {
            buffers: vec![PrefetchBuffer::new(&cfg.amb); count],
            dimms_per_channel: cfg.dimms_per_channel,
        }
    }

    fn idx(&self, channel: u32, dimm: u32) -> usize {
        assert!(dimm < self.dimms_per_channel, "dimm {dimm} out of range");
        (channel * self.dimms_per_channel + dimm) as usize
    }

    /// Records a demand lookup; returns true on a prefetch hit.
    pub fn lookup_hit(&mut self, channel: u32, dimm: u32, line: LineAddr) -> bool {
        let i = self.idx(channel, dimm);
        self.buffers[i].on_hit(line)
    }

    /// Pure presence check (for scheduling decisions; no LRU effects).
    pub fn would_hit(&self, channel: u32, dimm: u32, line: LineAddr) -> bool {
        self.buffers[self.idx(channel, dimm)].contains(line)
    }

    /// Records the K−1 prefetched lines of a group fetch landing in the
    /// AMB cache, reporting how many lines went in and how many resident
    /// lines the fill displaced (prefetch-efficiency inputs).
    pub fn fill<I>(&mut self, channel: u32, dimm: u32, lines: I) -> FillOutcome
    where
        I: IntoIterator<Item = LineAddr>,
    {
        let i = self.idx(channel, dimm);
        let mut out = FillOutcome::default();
        for line in lines {
            if self.buffers[i].insert(line).is_some() {
                out.evicted += 1;
            }
            out.inserted += 1;
        }
        out
    }

    /// Invalidates a line on a processor write (the prefetched copy is
    /// stale). Returns whether it was present.
    pub fn invalidate(&mut self, channel: u32, dimm: u32, line: LineAddr) -> bool {
        let i = self.idx(channel, dimm);
        self.buffers[i].invalidate(line)
    }

    /// Total lines currently tracked across all AMB caches.
    pub fn resident_lines(&self) -> usize {
        self.buffers.iter().map(PrefetchBuffer::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_types::config::MemoryConfig;

    fn table() -> PrefetchTable {
        PrefetchTable::new(&MemoryConfig::fbdimm_with_prefetch())
    }

    #[test]
    fn fill_then_hit_on_same_dimm_only() {
        let mut t = table();
        t.fill(0, 1, [LineAddr::new(100), LineAddr::new(101)]);
        assert!(t.would_hit(0, 1, LineAddr::new(100)));
        assert!(!t.would_hit(0, 2, LineAddr::new(100)));
        assert!(!t.would_hit(1, 1, LineAddr::new(100)));
        assert!(t.lookup_hit(0, 1, LineAddr::new(100)));
        assert!(!t.lookup_hit(0, 1, LineAddr::new(999)));
    }

    #[test]
    fn invalidate_on_write() {
        let mut t = table();
        t.fill(1, 3, [LineAddr::new(7)]);
        assert!(t.invalidate(1, 3, LineAddr::new(7)));
        assert!(!t.would_hit(1, 3, LineAddr::new(7)));
        assert!(!t.invalidate(1, 3, LineAddr::new(7)));
    }

    #[test]
    fn resident_lines_counts_across_buffers() {
        let mut t = table();
        t.fill(0, 0, [LineAddr::new(1), LineAddr::new(2)]);
        t.fill(1, 2, [LineAddr::new(3)]);
        assert_eq!(t.resident_lines(), 3);
    }

    #[test]
    fn fill_reports_inserted_and_evicted() {
        let mut t = table();
        let out = t.fill(0, 0, [LineAddr::new(1), LineAddr::new(2), LineAddr::new(3)]);
        assert_eq!(
            out,
            FillOutcome {
                inserted: 3,
                evicted: 0
            }
        );
    }

    #[test]
    fn overfilling_a_buffer_counts_evictions() {
        let cfg = MemoryConfig::fbdimm_with_prefetch();
        let capacity = PrefetchBuffer::new(&cfg.amb).capacity() as u64;
        let mut t = PrefetchTable::new(&cfg);
        let out = t.fill(0, 0, (0..2 * capacity).map(LineAddr::new));
        assert_eq!(out.inserted, 2 * capacity);
        assert_eq!(out.evicted, capacity);
        assert_eq!(t.resident_lines() as u64, capacity);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_dimm_rejected() {
        let t = table();
        let _ = t.would_hit(0, 99, LineAddr::new(0));
    }
}
