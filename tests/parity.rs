//! Golden-parity suite for the composable substrate API (ISSUE 7
//! acceptance criteria) and the event-wheel hot loop (ISSUE 9).
//!
//! The registry path must be a pure re-plumbing: selecting a system
//! through `--substrate` (registry spelling) must produce stats JSON
//! byte-identical to the historical `--system` spelling on every paper
//! system, with and without fault injection; the registry-composed
//! FCFS scheduler must reproduce the legacy `SchedPolicy::Fcfs` enum
//! results exactly; and the extension entries (`ddr3-1066`, `fcfs`)
//! must be reachable by name only, with their names echoed in the
//! stats document's composition metadata.
//!
//! The event wheel must likewise be a pure re-plumbing of the event
//! queue: every run under the default calendar queue must produce
//! stats JSON byte-identical to the same run forced onto the seed
//! binary heap with `FBD_EVENT_QUEUE=heap` — across the four paper
//! systems, under fault injection, and through the fast-fidelity path.

use std::path::PathBuf;
use std::process::{Command, Output};

use fbd_core::{RunResult, RunSpec};
use fbd_telemetry::{json, Json};
use fbd_types::config::SchedPolicy;
use fbd_types::substrate::substrates;

const BUDGET: &str = "5000";

fn fbdsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fbdsim"))
        .args(args)
        .output()
        .expect("fbdsim runs")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fbdsim-parity-{}-{name}", std::process::id()))
}

/// Removes every `host` object (top-level and per-point) and
/// re-serializes: the host block carries wall-clock timings that
/// legitimately differ between two invocations of the same run, so
/// byte-identity is asserted on everything else.
fn strip_host(text: &str) -> String {
    fn strip(j: &mut Json) {
        match j {
            Json::Obj(fields) => {
                fields.retain(|(k, _)| k != "host");
                for (_, v) in fields.iter_mut() {
                    strip(v);
                }
            }
            Json::Arr(items) => items.iter_mut().for_each(strip),
            _ => {}
        }
    }
    let mut doc = json::parse(text).expect("well-formed stats JSON");
    strip(&mut doc);
    doc.to_json_pretty(2)
}

/// Runs `fbdsim run` selecting `system` through `flag` (`--system` or
/// `--substrate`) with `envs` set, and returns the pretty-printed
/// stats JSON bytes with the wall-clock-bearing `host` object
/// stripped.
fn stats_via_env(flag: &str, system: &str, extra: &[&str], envs: &[(&str, &str)]) -> String {
    let tag = envs.iter().map(|(_, v)| *v).collect::<Vec<_>>().join("-");
    let path = tmp_path(&format!(
        "{}-{system}-{tag}.json",
        flag.trim_start_matches('-')
    ));
    let path_s = path.to_str().unwrap().to_string();
    let mut args = vec![
        "run",
        "--workload",
        "1C-swim",
        flag,
        system,
        "--budget",
        BUDGET,
        "--stats-json",
        &path_s,
    ];
    args.extend_from_slice(extra);
    let out = Command::new(env!("CARGO_BIN_EXE_fbdsim"))
        .args(&args)
        .envs(envs.iter().copied())
        .output()
        .expect("fbdsim runs");
    assert_eq!(
        exit_code(&out),
        0,
        "fbdsim {args:?} (env {envs:?}) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("stats file written");
    std::fs::remove_file(&path).ok();
    strip_host(&text)
}

/// [`stats_via_env`] with no environment overrides.
fn stats_via(flag: &str, system: &str, extra: &[&str]) -> String {
    stats_via_env(flag, system, extra, &[])
}

#[test]
fn substrate_flag_is_byte_identical_to_system_flag_on_all_paper_systems() {
    for system in ["ddr2", "fbd", "fbd-ap", "fbd-apfl"] {
        let old = stats_via("--system", system, &[]);
        let new = stats_via("--substrate", system, &[]);
        assert_eq!(
            old, new,
            "`--substrate {system}` diverged from `--system {system}`"
        );
        // The parity is not vacuous: the document names the substrate.
        let doc = json::parse(&old).expect("well-formed stats JSON");
        let comp = doc.get("composition").expect("composition metadata");
        assert_eq!(
            comp.get("substrate").and_then(Json::as_str),
            Some(system),
            "composition must echo the selected substrate"
        );
    }
}

#[test]
fn parity_holds_under_fault_injection() {
    // Fault flags mutate the config away from the registered preset;
    // the substrate label and the output bytes must both survive that.
    let faults = ["--fault-ber", "1e-5", "--fault-seed", "3"];
    for system in ["fbd", "fbd-ap"] {
        let old = stats_via("--system", system, &faults);
        let new = stats_via("--substrate", system, &faults);
        assert_eq!(old, new, "fault-injected `{system}` runs diverged");
        let doc = json::parse(&old).expect("well-formed stats JSON");
        assert!(doc.get("errors").is_some(), "faulted run reports errors");
        let comp = doc.get("composition").expect("composition metadata");
        assert_eq!(comp.get("substrate").and_then(Json::as_str), Some(system));
    }
}

#[test]
fn explicit_reliability_off_spellings_are_byte_identical_to_absent() {
    // Every off spelling of the recovery knobs must stay on the
    // zero-cost path: same bytes as a run with no flags at all, and no
    // `errors` object grown.
    let baseline = stats_via("--system", "fbd-ap", &[]);
    assert!(
        !baseline.contains("\"errors\""),
        "clean baseline must not carry an errors object"
    );
    for extra in [
        &["--scrub", "none"][..],
        &["--fault-ber", "0"],
        &["--fault-ber", "0", "--crc-bits", "0"],
        &["--fault-ber", "0", "--failback", "0"],
        &["--fault-ber", "0", "--reissue", "0"],
        &[
            "--fault-ber",
            "0",
            "--crc-bits",
            "0",
            "--scrub",
            "none",
            "--failback",
            "0",
            "--reissue",
            "0",
        ],
    ] {
        let off = stats_via("--system", "fbd-ap", extra);
        assert_eq!(
            baseline, off,
            "off spelling {extra:?} must not change a byte"
        );
    }
}

#[test]
fn parity_holds_with_the_full_reliability_lifecycle_armed() {
    let flags = [
        "--fault-ber",
        "1e-4",
        "--fault-seed",
        "3",
        "--crc-bits",
        "4",
        "--scrub",
        "patrol",
        "--failback",
        "2000",
        "--reissue",
        "8",
    ];
    let old = stats_via("--system", "fbd-ap", &flags);
    let new = stats_via("--substrate", "fbd-ap", &flags);
    assert_eq!(old, new, "armed lifecycle diverged between spellings");
    let doc = json::parse(&old).expect("well-formed stats JSON");
    let errors = doc.get("errors").expect("armed run reports errors");
    assert!(
        errors.get("silent").is_some(),
        "silent-corruption accounting must be exported"
    );
}

#[test]
fn explicit_default_scheduler_is_byte_identical_to_none() {
    let implicit = stats_via("--system", "fbd-ap", &[]);
    let explicit = stats_via("--system", "fbd-ap", &["--scheduler", "hit-first"]);
    assert_eq!(
        implicit, explicit,
        "spelling out the default scheduler must not change a byte"
    );
}

/// The scalar results that must agree between the legacy enum path and
/// the registry path (RunResult has no blanket equality).
fn fingerprint(r: &RunResult) -> (f64, Vec<f64>, u64, u64, u64, f64) {
    (
        r.elapsed.as_ns_f64(),
        r.ipcs(),
        r.mem.demand_reads,
        r.mem.writes,
        r.mem.dram_ops.act_pre,
        r.energy.total_nj(),
    )
}

#[test]
fn registry_fcfs_reproduces_the_legacy_enum_policy() {
    // A four-core mix keeps the transaction queue deep enough that
    // hit-first actually reorders (a 1-core stream rarely gives the
    // scheduler more than one ready candidate).
    let base = || {
        RunSpec::paper_default(4)
            .workload("4C-1")
            .memory(substrates().get("fbd").unwrap().config())
            .budget(20_000)
            .seed(42)
    };
    let mut legacy_spec = base();
    legacy_spec.system_mut().mem.sched_policy = SchedPolicy::Fcfs;
    let legacy = legacy_spec.run();
    let composed = base().try_scheduler("fcfs").expect("registered").run();
    assert_eq!(
        fingerprint(&legacy),
        fingerprint(&composed),
        "registry-selected fcfs diverged from the SchedPolicy::Fcfs enum"
    );
    // And the policies genuinely differ from the default, so the
    // comparison above cannot pass by accident.
    let hit_first = base().run();
    assert_ne!(
        fingerprint(&hit_first),
        fingerprint(&legacy),
        "fcfs and hit-first must be observably different policies"
    );
}

#[test]
fn extension_substrate_and_scheduler_compose_by_name_only() {
    // ddr3-1066 and fcfs exist only as registry entries — no enum
    // variant, no core edits. A run composed from both must work and
    // must echo both names in the stats metadata.
    let out = fbdsim(&[
        "run",
        "--workload",
        "1C-swim",
        "--substrate",
        "ddr3-1066",
        "--scheduler",
        "fcfs",
        "--budget",
        BUDGET,
        "--json",
    ]);
    assert_eq!(
        exit_code(&out),
        0,
        "ddr3-1066 + fcfs run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = json::parse(&String::from_utf8(out.stdout).unwrap()).expect("stats JSON");
    let comp = doc.get("composition").expect("composition metadata");
    assert_eq!(
        comp.get("substrate").and_then(Json::as_str),
        Some("ddr3-1066")
    );
    assert_eq!(comp.get("scheduler").and_then(Json::as_str), Some("fcfs"));
    assert!(
        doc.get("ipc_sum").and_then(Json::as_f64).unwrap() > 0.0,
        "the composed system must actually retire instructions"
    );
}

#[test]
fn unknown_registry_names_exit_2_with_the_available_list() {
    let out = fbdsim(&["run", "--workload", "1C-swim", "--substrate", "ddr9"]);
    assert_eq!(exit_code(&out), 2);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown substrate `ddr9`"), "{err}");
    assert!(err.contains("available:"), "{err}");
    assert!(
        err.contains("ddr3-1066"),
        "listing names the entries: {err}"
    );

    let out = fbdsim(&[
        "run",
        "--workload",
        "1C-swim",
        "--system",
        "fbd",
        "--scheduler",
        "elevator",
    ]);
    assert_eq!(exit_code(&out), 2);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown scheduler `elevator`"), "{err}");
    assert!(err.contains("hit-first|fcfs"), "{err}");
}

const WHEEL: &[(&str, &str)] = &[("FBD_EVENT_QUEUE", "wheel")];
const HEAP: &[(&str, &str)] = &[("FBD_EVENT_QUEUE", "heap")];

#[test]
fn event_wheel_is_byte_identical_to_seed_heap_on_all_paper_systems() {
    for system in ["ddr2", "fbd", "fbd-ap", "fbd-apfl"] {
        let wheel = stats_via_env("--system", system, &[], WHEEL);
        let heap = stats_via_env("--system", system, &[], HEAP);
        assert_eq!(
            wheel, heap,
            "event wheel diverged from the seed heap on `{system}`"
        );
    }
}

#[test]
fn event_wheel_heap_parity_holds_under_fault_injection() {
    // Fault injection exercises the drop/retry event paths (extra
    // ReadDone orderings and redundant Decide wakeups — exactly where
    // the wheel's dedup could go wrong).
    let faults = ["--fault-ber", "1e-5", "--fault-seed", "3"];
    let wheel = stats_via_env("--system", "fbd-ap", &faults, WHEEL);
    let heap = stats_via_env("--system", "fbd-ap", &faults, HEAP);
    assert_eq!(wheel, heap, "faulted run diverged between queue kinds");
    let doc = json::parse(&wheel).expect("well-formed stats JSON");
    assert!(doc.get("errors").is_some(), "faulted run reports errors");
}

#[test]
fn event_wheel_heap_parity_holds_with_recovery_traffic() {
    // Scrub sweeps and prefetch re-issue ride idle Decide events, so
    // they are exactly the traffic that would expose a queue-ordering
    // difference between the wheel and the seed heap.
    let flags = [
        "--fault-ber",
        "1e-4",
        "--fault-seed",
        "3",
        "--crc-bits",
        "4",
        "--scrub",
        "patrol",
        "--reissue",
        "8",
    ];
    let wheel = stats_via_env("--system", "fbd-ap", &flags, WHEEL);
    let heap = stats_via_env("--system", "fbd-ap", &flags, HEAP);
    assert_eq!(wheel, heap, "recovery traffic diverged between queues");
}

#[test]
fn event_wheel_heap_parity_holds_through_fast_fidelity() {
    // The fast path calibrates itself by running the accurate
    // simulator on anchor points; those anchor runs must land on the
    // same numbers under either queue.
    let fast = ["--fidelity", "fast"];
    let wheel = stats_via_env("--system", "fbd", &fast, WHEEL);
    let heap = stats_via_env("--system", "fbd", &fast, HEAP);
    assert_eq!(
        wheel, heap,
        "fast-fidelity run diverged between queue kinds"
    );
}

#[test]
fn system_and_substrate_flags_are_mutually_exclusive() {
    let out = fbdsim(&[
        "run",
        "--workload",
        "1C-swim",
        "--system",
        "fbd",
        "--substrate",
        "fbd",
    ]);
    assert_eq!(exit_code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("aliases"));
}
