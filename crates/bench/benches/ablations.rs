//! Ablation studies for the design choices DESIGN.md §7 calls out.
//! These go beyond the paper's figures: each row isolates one design
//! decision of the AMB prefetcher or the surrounding memory system.
//!
//! 1. **FIFO vs LRU** AMB-cache replacement — the paper argues FIFO
//!    (§3.2: a hit block is now cached in the processor and will not be
//!    re-demanded soon, so protecting it is pointless).
//! 2. **VRL on/off** — the paper reports AMB-prefetching gains are
//!    similar with Variable Read Latency (§5, end of intro).
//! 3. **Hit-first vs FCFS** scheduling — the reordering policy the
//!    simulated controller inherits from Rixner et al.
//! 4. **Multi-cacheline/close-page vs page-interleaving/open-page** as
//!    the substrate for AMB prefetching (§3.2 allows both).
//! 5. **Ganged vs unganged** physical channels at equal total pins.

use fbd_bench::*;
use fbd_core::experiment::ExperimentConfig;
use fbd_types::config::{Interleaving, MemoryTech, PagePolicy, Replacement, SystemConfig};

fn run_pair(
    title: &str,
    configs: Vec<(String, SystemConfig)>,
    exp: &ExperimentConfig,
    refs: &std::collections::HashMap<String, f64>,
) {
    println!("--- {title} ---");
    let mut rows = vec![{
        let mut h = vec!["config".to_string()];
        h.extend(workload_groups().iter().map(|(g, _)| g.to_string()));
        h
    }];
    let mut table: Vec<Vec<String>> = configs.iter().map(|(l, _)| vec![l.clone()]).collect();
    let grouped = run_grouped(
        |cores| {
            configs
                .iter()
                .map(|(l, c)| {
                    let mut c = *c;
                    c.cpu.cores = cores;
                    (l.clone(), c)
                })
                .collect()
        },
        exp,
    );
    for (_, workloads, results) in grouped {
        for (i, (label, _)) in configs.iter().enumerate() {
            let v: Vec<f64> = workloads
                .iter()
                .map(|w| {
                    results
                        .iter()
                        .find(|((c, n), _)| c == label && n == w.name())
                        .map(|(_, r)| speedup(w, r, refs))
                        .expect("run")
                })
                .collect();
            table[i].push(f3(mean(&v)));
        }
    }
    rows.extend(table.clone());
    emit_table("ablations", &rows);
    println!();
}

fn main() {
    let exp = fbd_bench::experiment();
    banner(
        "Ablations",
        "design-choice studies beyond the paper's figures",
        &exp,
    );
    let refs = references(Variant::Ddr2, &exp);

    // 1. FIFO vs LRU replacement in the AMB cache.
    let fifo = system(Variant::FbdAp, 1);
    let mut lru = fifo;
    lru.mem.amb.replacement = Replacement::Lru;
    run_pair(
        "AMB-cache replacement: FIFO (paper) vs LRU",
        vec![("FIFO".into(), fifo), ("LRU".into(), lru)],
        &exp,
        &refs,
    );

    // 2. Variable Read Latency.
    let mut base_vrl = system(Variant::Fbd, 1);
    base_vrl.mem.tech = MemoryTech::FbDimm { vrl: true };
    let mut ap_vrl = system(Variant::FbdAp, 1);
    ap_vrl.mem.tech = MemoryTech::FbDimm { vrl: true };
    run_pair(
        "Variable Read Latency: fixed (paper default) vs VRL",
        vec![
            ("FBD fixed".into(), system(Variant::Fbd, 1)),
            ("FBD VRL".into(), base_vrl),
            ("FBD-AP fixed".into(), system(Variant::FbdAp, 1)),
            ("FBD-AP VRL".into(), ap_vrl),
        ],
        &exp,
        &refs,
    );

    // 3. Hit-first vs FCFS scheduling (on plain FB-DIMM). Both
    //    policies are registry entries, selected by name.
    let fcfs = with_scheduler(system(Variant::Fbd, 1), "fcfs");
    run_pair(
        "Controller scheduling: hit-first (paper) vs FCFS",
        vec![
            ("hit-first".into(), system(Variant::Fbd, 1)),
            ("FCFS".into(), fcfs),
        ],
        &exp,
        &refs,
    );

    // 4. AMB prefetching substrate: multi-cacheline/close vs
    //    page-interleaving/open-page.
    let mut ap_page = system(Variant::FbdAp, 1);
    ap_page.mem.interleaving = Interleaving::Page;
    ap_page.mem.page_policy = PagePolicy::OpenPage;
    let mut fbd_page = system(Variant::Fbd, 1);
    fbd_page.mem.interleaving = Interleaving::Page;
    fbd_page.mem.page_policy = PagePolicy::OpenPage;
    run_pair(
        "AP substrate: multi-CL/close-page (paper) vs page/open-page",
        vec![
            ("AP multi-CL/close".into(), system(Variant::FbdAp, 1)),
            ("AP page/open".into(), ap_page),
            ("FBD page/open".into(), fbd_page),
        ],
        &exp,
        &refs,
    );

    // 5. Ganged pairs vs independent physical channels (equal pins:
    //    2 logical × 2 phys vs 4 logical × 1 phys).
    let mut unganged = system(Variant::Fbd, 1);
    unganged.mem.logical_channels = 4;
    unganged.mem.phys_per_logical = 1;
    run_pair(
        "Channel organisation: 2 ganged pairs (paper) vs 4 independent",
        vec![
            ("2x ganged".into(), system(Variant::Fbd, 1)),
            ("4x independent".into(), unganged),
        ],
        &exp,
        &refs,
    );

    // 6. Permutation-based bank indexing (Zhang–Zhu–Zhang, the paper's
    //    citation [26]) under open-page page interleaving.
    let mut page = system(Variant::Fbd, 1);
    page.mem.interleaving = Interleaving::Page;
    page.mem.page_policy = PagePolicy::OpenPage;
    let mut page_perm = page;
    page_perm.mem.xor_permutation = true;
    run_pair(
        "Open-page bank indexing: plain vs XOR permutation [26]",
        vec![
            ("page/open".into(), page),
            ("page/open+perm".into(), page_perm),
        ],
        &exp,
        &refs,
    );

    // 6b. Ranks per DIMM: one (paper's Figure 2 example) vs two —
    //     doubles bank-level parallelism behind each AMB at equal
    //     channel bandwidth.
    let mut two_rank = system(Variant::Fbd, 1);
    two_rank.mem.ranks_per_dimm = 2;
    let mut two_rank_ap = system(Variant::FbdAp, 1);
    two_rank_ap.mem.ranks_per_dimm = 2;
    run_pair(
        "Ranks per DIMM: 1 (paper) vs 2",
        vec![
            ("FBD 1 rank".into(), system(Variant::Fbd, 1)),
            ("FBD 2 ranks".into(), two_rank),
            ("FBD-AP 1 rank".into(), system(Variant::FbdAp, 1)),
            ("FBD-AP 2 ranks".into(), two_rank_ap),
        ],
        &exp,
        &refs,
    );

    // 7. DRAM refresh on/off (the paper ignores refresh; a production
    //    controller cannot).
    let mut refresh = system(Variant::FbdAp, 1);
    refresh.mem.refresh = fbd_types::config::RefreshConfig::ddr2_1gb();
    run_pair(
        "DRAM refresh: ignored (paper) vs JEDEC tREFI/tRFC",
        vec![
            ("no refresh".into(), system(Variant::FbdAp, 1)),
            ("refresh on".into(), refresh),
        ],
        &exp,
        &refs,
    );
}
