//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the `Mutex`/`RwLock` subset this workspace uses with
//! parking_lot's non-poisoning semantics: a panic while holding a lock
//! does not poison it for later users.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the lock if it is free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
