//! Prefetcher design-space exploration: sweep the AMB prefetcher's three
//! knobs (region size K, buffer capacity, tag associativity) for one
//! workload and print performance, coverage, efficiency and normalized
//! DRAM energy side by side — the practical tuning workflow behind the
//! paper's §5.3 and §5.5 recommendations.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p fbd-core --example prefetch_tuning [workload]
//! ```
//!
//! `workload` is one of the twelve benchmark names (default: `mgrid`).

use fbd_core::RunSpec;
use fbd_power::PowerModel;
use fbd_types::config::{Associativity, Interleaving, MemoryConfig, SystemConfig};
use fbd_workloads::Workload;

fn ap_config(k: u32, entries: u32, assoc: Associativity) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(1);
    cfg.mem = MemoryConfig::fbdimm_with_prefetch();
    cfg.mem.amb.region_lines = k;
    cfg.mem.amb.cache_lines = entries;
    cfg.mem.amb.associativity = assoc;
    cfg.mem.interleaving = Interleaving::MultiCacheline { lines: k };
    cfg
}

fn main() {
    let bench = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "mgrid".to_string());
    if fbd_workloads::by_name(&bench).is_none() {
        eprintln!("unknown benchmark `{bench}`; pick one of:");
        for p in &fbd_workloads::PROFILES {
            eprintln!("  {}", p.name);
        }
        std::process::exit(1);
    }
    let workload = Workload::new(format!("1C-{bench}"), &[&bench]);
    let power = PowerModel::paper_ratio();
    let spec = RunSpec::paper_default(1)
        .with_workload(workload)
        .seed(42)
        .budget(150_000);

    let baseline = spec.clone().run();
    let base_ipc = baseline.cores[0].ipc();

    println!("AMB prefetcher design space for `{bench}` (vs plain FB-DIMM):");
    println!();
    println!("config                     speedup  coverage  efficiency  norm.energy");
    let sweep: Vec<(String, u32, u32, Associativity)> = vec![
        ("K=2  64e full".into(), 2, 64, Associativity::Full),
        ("K=4  64e full (default)".into(), 4, 64, Associativity::Full),
        ("K=8  64e full".into(), 8, 64, Associativity::Full),
        ("K=4  32e full".into(), 4, 32, Associativity::Full),
        ("K=4 128e full".into(), 4, 128, Associativity::Full),
        ("K=4  64e direct".into(), 4, 64, Associativity::Direct),
        ("K=4  64e 2-way".into(), 4, 64, Associativity::Ways(2)),
        ("K=4  64e 4-way".into(), 4, 64, Associativity::Ways(4)),
    ];
    for (label, k, entries, assoc) in sweep {
        let r = spec.clone().with_system(ap_config(k, entries, assoc)).run();
        println!(
            "{label:<26} {:>6.1}%  {:>7.1}%  {:>9.1}%  {:>10.3}",
            (r.cores[0].ipc() / base_ipc - 1.0) * 100.0,
            r.mem.prefetch_coverage() * 100.0,
            r.mem.prefetch_efficiency() * 100.0,
            power.normalized(&r.mem.dram_ops, &baseline.mem.dram_ops),
        );
    }
    println!();
    println!("The paper's recommendation (§5.5): 4-way associative, 64 entries,");
    println!("4-cacheline interleaving balances performance and power.");
}
